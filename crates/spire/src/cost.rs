//! The T-complexity cost model (paper Section 5).
//!
//! Two models are provided:
//!
//! * [`exact_histogram`] — the *exact* model: a syntax-level walk that
//!   composes per-instruction closed-form gate histograms (no circuit is
//!   materialized). Theorems 5.1 and 5.2 state that this equals the
//!   compiled circuit's gate counts; the test suite asserts exactly that.
//! * [`formula_t`] / [`formula_mcx`] — the paper's compositional
//!   recurrences with the constants `c_ctrl` and `c_CH`, which
//!   over-approximate low-arity controls (the paper's Section 5 notes the
//!   constants are implementation-determined; its defaults are
//!   `c_ctrl = 14`, `c_CH = 8`). These reproduce the analyses of paper
//!   Sections 3.4 and 8.1 and agree with the exact model asymptotically.

use qcirc::GateHistogram;
use tower::{CoreExpr, CoreStmt, CoreValue, Symbol, Type, TypeInfo, TypeTable};

use crate::error::SpireError;
use crate::layout::{layout, AllocPolicy, Layout};
use crate::select::select;

/// Everything the cost model needs to price primitives.
#[derive(Debug, Clone)]
pub struct CostEnv<'a> {
    /// Machine layout (register widths and memory geometry).
    pub layout: &'a Layout,
    /// Variable types.
    pub types: &'a TypeInfo,
    /// Type table.
    pub table: &'a TypeTable,
}

/// Exact gate histogram of a (with-ful) core-IR statement: the cost model
/// of Theorem 5.2, evaluated without emitting a single gate.
///
/// # Errors
///
/// Propagates selection errors.
pub fn exact_histogram(stmt: &CoreStmt, env: &CostEnv<'_>) -> Result<GateHistogram, SpireError> {
    let instrs = select(stmt, env.layout, env.types, env.table)?;
    let mut hist = GateHistogram::new();
    for instr in &instrs {
        hist += instr.histogram();
    }
    Ok(hist)
}

/// Convenience: type check, lay out, and cost a statement in one call.
///
/// # Errors
///
/// Propagates type and layout errors.
pub fn analyze(
    stmt: &CoreStmt,
    inputs: &[(Symbol, Type)],
    table: &TypeTable,
) -> Result<GateHistogram, SpireError> {
    let info = tower::typecheck(stmt, inputs, table).map_err(SpireError::Front)?;
    let expanded = stmt.expand_with();
    let l = layout(&expanded, inputs, &info, table, AllocPolicy::Conservative)?;
    let env = CostEnv {
        layout: &l,
        types: &info,
        table,
    };
    exact_histogram(&expanded, &env)
}

/// Constants of the paper's formula model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormulaConstants {
    /// T gates to add one control bit to a multi-controlled gate
    /// (paper: `c_ctrl = 2 × 7 = 14` via Figures 5 and 6).
    pub c_ctrl: u64,
    /// T gates of a controlled Hadamard (paper: `c_CH = 8` via Lee et al.;
    /// this crate's own decomposition costs 2).
    pub c_ch: u64,
}

impl FormulaConstants {
    /// The constants used in the paper's Section 5.
    pub fn paper() -> Self {
        FormulaConstants {
            c_ctrl: 14,
            c_ch: 8,
        }
    }
}

impl Default for FormulaConstants {
    fn default() -> Self {
        FormulaConstants::paper()
    }
}

/// Histogram of one primitive statement at control depth 0 (its `c^MCX_s`
/// and `c^T_s` constants).
fn primitive_histogram(stmt: &CoreStmt, env: &CostEnv<'_>) -> Result<GateHistogram, SpireError> {
    exact_histogram(stmt, env)
}

/// The paper's MCX-complexity recurrence `C_MCX(s)` (Section 5).
///
/// # Errors
///
/// Propagates selection errors from primitive costing.
pub fn formula_mcx(stmt: &CoreStmt, env: &CostEnv<'_>) -> Result<u64, SpireError> {
    Ok(match stmt {
        CoreStmt::Skip => 0,
        CoreStmt::Seq(ss) => {
            let mut total = 0;
            for s in ss {
                total += formula_mcx(s, env)?;
            }
            total
        }
        // The if-statement does not change the number of arbitrarily
        // controllable Clifford gates.
        CoreStmt::If { body, .. } => formula_mcx(body, env)?,
        CoreStmt::With { setup, body } => 2 * formula_mcx(setup, env)? + formula_mcx(body, env)?,
        primitive => primitive_histogram(primitive, env)?.mcx_complexity(),
    })
}

/// The paper's T-complexity recurrence `C_T(s)` (Section 5) with the given
/// constants.
///
/// # Errors
///
/// Propagates selection errors from primitive costing.
pub fn formula_t(
    stmt: &CoreStmt,
    env: &CostEnv<'_>,
    constants: FormulaConstants,
) -> Result<u64, SpireError> {
    Ok(match stmt {
        CoreStmt::Skip => 0,
        CoreStmt::Seq(ss) => {
            let mut total = 0;
            for s in ss {
                total += formula_t(s, env, constants)?;
            }
            total
        }
        CoreStmt::With { setup, body } => {
            2 * formula_t(setup, env, constants)? + formula_t(body, env, constants)?
        }
        CoreStmt::If { cond, body } => {
            // C_T(if x {s1; s2}) = C_T(if x {s1}) + C_T(if x {s2}).
            let mut total = 0;
            let members: Vec<&CoreStmt> = match &**body {
                CoreStmt::Seq(ss) => ss.iter().collect(),
                other => vec![other],
            };
            for member in members {
                total += match member {
                    // C_T(if x { H(y) }) = c_CH.
                    CoreStmt::Hadamard(_) => constants.c_ch,
                    // C_T(if x { y <- v }) = 0 for literal values.
                    CoreStmt::Assign {
                        expr: CoreExpr::Value(v),
                        ..
                    }
                    | CoreStmt::Unassign {
                        expr: CoreExpr::Value(v),
                        ..
                    } if !matches!(v, CoreValue::Pair(_, _)) => 0,
                    // C_T(if x { s }) = c_ctrl · C_MCX(s) + C_T(s).
                    other => {
                        constants.c_ctrl * formula_mcx(other, env)?
                            + formula_t(other, env, constants)?
                    }
                };
            }
            let _ = cond;
            total
        }
        primitive => primitive_histogram(primitive, env)?.t_complexity(),
    })
}

/// T gates attributable to the *uncomputation* that conditional flattening
/// introduces (paper Appendix F / Table 4): for every flattening-generated
/// `with { z ← x && y } do { … }`, the reversal re-executes the setup; this
/// reports the total T-cost of those reversals.
///
/// # Errors
///
/// Propagates selection errors.
pub fn flattening_uncomputation_t(stmt: &CoreStmt, env: &CostEnv<'_>) -> Result<u64, SpireError> {
    fn is_flattening_temp(var: &Symbol) -> bool {
        var.as_str().starts_with("z%")
    }
    fn walk(
        stmt: &CoreStmt,
        k: usize,
        env: &CostEnv<'_>,
        total: &mut u64,
    ) -> Result<(), SpireError> {
        match stmt {
            CoreStmt::Seq(ss) => {
                for s in ss {
                    walk(s, k, env, total)?;
                }
            }
            CoreStmt::If { body, .. } => walk(body, k + 1, env, total)?,
            CoreStmt::With { setup, body } => {
                if let CoreStmt::Assign { var, .. } = &**setup {
                    if is_flattening_temp(var) {
                        let hist = exact_histogram(setup, env)?;
                        *total += hist.shifted(k).t_complexity();
                    }
                }
                walk(setup, k, env, total)?;
                walk(body, k, env, total)?;
            }
            _ => {}
        }
        Ok(())
    }
    let mut total = 0;
    walk(stmt, 0, env, &mut total)?;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tower::{typecheck, CoreBinOp, NameGen, Symbol, WordConfig};

    fn table() -> TypeTable {
        TypeTable::new(WordConfig::paper_default())
    }

    fn env_and(
        stmt: &CoreStmt,
        inputs: &[(Symbol, Type)],
        table: &TypeTable,
    ) -> (Layout, TypeInfo) {
        let info = typecheck(stmt, inputs, table).unwrap();
        let l = layout(
            &stmt.expand_with(),
            inputs,
            &info,
            table,
            AllocPolicy::Conservative,
        )
        .unwrap();
        (l, info)
    }

    #[test]
    fn if_shifts_primitive_histogram() {
        let table = table();
        let inputs = vec![
            (Symbol::new("c"), Type::Bool),
            (Symbol::new("y"), Type::UInt),
        ];
        let body = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Var(Symbol::new("y")),
        };
        let under_if = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(body.clone()),
        };
        let (l1, i1) = env_and(&body, &inputs, &table);
        let plain = exact_histogram(
            &body,
            &CostEnv {
                layout: &l1,
                types: &i1,
                table: &table,
            },
        )
        .unwrap();
        let (l2, i2) = env_and(&under_if, &inputs, &table);
        let shifted = exact_histogram(
            &under_if,
            &CostEnv {
                layout: &l2,
                types: &i2,
                table: &table,
            },
        )
        .unwrap();
        assert_eq!(shifted, plain.shifted(1));
        // A copy is 8 CNOTs; under one if they become 8 Toffolis = 56 T.
        assert_eq!(plain.t_complexity(), 0);
        assert_eq!(shifted.t_complexity(), 56);
    }

    #[test]
    fn formula_mcx_ignores_ifs() {
        let table = table();
        let inputs = vec![
            (Symbol::new("c"), Type::Bool),
            (Symbol::new("y"), Type::UInt),
        ];
        let body = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Var(Symbol::new("y")),
        };
        let under_if = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(body.clone()),
        };
        let (l, i) = env_and(&under_if, &inputs, &table);
        let env = CostEnv {
            layout: &l,
            types: &i,
            table: &table,
        };
        assert_eq!(
            formula_mcx(&body, &env).unwrap(),
            formula_mcx(&under_if, &env).unwrap()
        );
    }

    #[test]
    fn formula_t_charges_c_ctrl_per_mcx() {
        let table = table();
        let inputs = vec![
            (Symbol::new("c"), Type::Bool),
            (Symbol::new("y"), Type::UInt),
        ];
        let body = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Var(Symbol::new("y")),
        };
        let under_if = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(body.clone()),
        };
        let (l, i) = env_and(&under_if, &inputs, &table);
        let env = CostEnv {
            layout: &l,
            types: &i,
            table: &table,
        };
        let c = FormulaConstants::paper();
        // copy = 8 CNOT gates; formula charges 14 each.
        assert_eq!(formula_t(&under_if, &env, c).unwrap(), 14 * 8);
        // Constant assignment under if is free in the formula model.
        let const_if = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::Assign {
                var: Symbol::new("k"),
                expr: CoreExpr::Value(CoreValue::UInt(7)),
            }),
        };
        let (l2, i2) = env_and(&const_if, &inputs, &table);
        let env2 = CostEnv {
            layout: &l2,
            types: &i2,
            table: &table,
        };
        assert_eq!(formula_t(&const_if, &env2, c).unwrap(), 0);
    }

    #[test]
    fn formula_t_charges_c_ch_for_controlled_hadamard() {
        let table = table();
        let inputs = vec![
            (Symbol::new("c"), Type::Bool),
            (Symbol::new("q"), Type::Bool),
        ];
        let stmt = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::Hadamard(Symbol::new("q"))),
        };
        let (l, i) = env_and(&stmt, &inputs, &table);
        let env = CostEnv {
            layout: &l,
            types: &i,
            table: &table,
        };
        assert_eq!(
            formula_t(&stmt, &env, FormulaConstants::paper()).unwrap(),
            8
        );
        // The exact model uses this crate's own CH decomposition (2 T).
        assert_eq!(exact_histogram(&stmt, &env).unwrap().t_complexity(), 2);
    }

    #[test]
    fn flattening_uncomputation_accounts_z_temps() {
        // Build what the optimizer produces for if a { if b { x <- y } }.
        let mut names = NameGen::new();
        let nested = CoreStmt::If {
            cond: Symbol::new("a"),
            body: Box::new(CoreStmt::If {
                cond: Symbol::new("b"),
                body: Box::new(CoreStmt::Assign {
                    var: Symbol::new("x"),
                    expr: CoreExpr::Var(Symbol::new("y")),
                }),
            }),
        };
        let optimized = crate::opt::optimize(&nested, crate::opt::OptConfig::spire(), &mut names);
        let table = table();
        let inputs = vec![
            (Symbol::new("a"), Type::Bool),
            (Symbol::new("b"), Type::Bool),
            (Symbol::new("y"), Type::UInt),
        ];
        let (l, i) = env_and(&optimized, &inputs, &table);
        let env = CostEnv {
            layout: &l,
            types: &i,
            table: &table,
        };
        // One flattening temp: z <- a && b is a single Toffoli, 7 T.
        assert_eq!(flattening_uncomputation_t(&optimized, &env).unwrap(), 7);
        let _ = CoreBinOp::And;
    }

    #[test]
    fn analyze_smoke() {
        let table = table();
        let stmt = CoreStmt::Assign {
            var: Symbol::new("x"),
            expr: CoreExpr::Value(CoreValue::UInt(0xF)),
        };
        let hist = analyze(&stmt, &[], &table).unwrap();
        assert_eq!(hist.mcx_complexity(), 4);
        assert_eq!(hist.t_complexity(), 0);
    }
}
