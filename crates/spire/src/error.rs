//! Error type for the Spire compiler backend.

use std::error::Error;
use std::fmt;

use tower::{Symbol, TowerError};

/// Errors produced by the Spire backend (layout, selection, code
/// generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpireError {
    /// An error from the Tower front end.
    Front(TowerError),
    /// A variable was used before any register was assigned to it.
    NoRegister {
        /// The variable.
        var: Symbol,
    },
    /// `let x <- e` where `e` reads `x` itself; XOR-assignment from a
    /// register into itself is not a reversible operation.
    SelfAssignment {
        /// The variable.
        var: Symbol,
    },
    /// `*p <-> p`: a memory swap whose value operand is its own pointer.
    AliasedMemSwap {
        /// The pointer variable.
        var: Symbol,
    },
    /// The register allocator (in aggressive mode) produced an allocation
    /// it can prove unsound: a variable's register differs across control
    /// paths (paper Appendix D).
    UnsoundAllocation {
        /// The variable whose registers diverged.
        var: Symbol,
        /// Description of the divergence.
        message: String,
    },
    /// A register was read on a quantum simulation backend while in
    /// superposition: it holds no single classical value.
    Superposed {
        /// The variable whose register is superposed.
        var: Symbol,
    },
    /// The program swaps memory cells of a type wider than the memory's
    /// cell width (an internal invariant violation).
    CellTooWide {
        /// Width requested.
        requested: u32,
        /// Cell width available.
        available: u32,
    },
}

impl fmt::Display for SpireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpireError::Front(e) => write!(f, "{e}"),
            SpireError::NoRegister { var } => {
                write!(f, "variable `{var}` has no register")
            }
            SpireError::SelfAssignment { var } => write!(
                f,
                "assignment of `{var}` reads `{var}` itself (not reversible)"
            ),
            SpireError::AliasedMemSwap { var } => {
                write!(f, "memory swap `*{var} <-> {var}` aliases its pointer")
            }
            SpireError::UnsoundAllocation { var, message } => {
                write!(f, "unsound register allocation for `{var}`: {message}")
            }
            SpireError::Superposed { var } => {
                write!(f, "register of `{var}` is in superposition")
            }
            SpireError::CellTooWide {
                requested,
                available,
            } => write!(
                f,
                "memory cell of width {requested} exceeds cell width {available}"
            ),
        }
    }
}

impl Error for SpireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpireError::Front(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TowerError> for SpireError {
    fn from(e: TowerError) -> Self {
        SpireError::Front(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            SpireError::NoRegister {
                var: Symbol::new("x"),
            },
            SpireError::SelfAssignment {
                var: Symbol::new("x"),
            },
            SpireError::CellTooWide {
                requested: 9,
                available: 8,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
