//! Error type for the Spire compiler backend.

use std::error::Error;
use std::fmt;

use tower::{Span, Symbol, TowerError};

/// Errors produced by the Spire backend (layout, selection, code
/// generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpireError {
    /// An error from the Tower front end.
    Front(TowerError),
    /// A variable was used before any register was assigned to it.
    NoRegister {
        /// The variable.
        var: Symbol,
    },
    /// `let x <- e` where `e` reads `x` itself; XOR-assignment from a
    /// register into itself is not a reversible operation.
    SelfAssignment {
        /// The variable.
        var: Symbol,
    },
    /// `*p <-> p`: a memory swap whose value operand is its own pointer.
    AliasedMemSwap {
        /// The pointer variable.
        var: Symbol,
    },
    /// The register allocator (in aggressive mode) produced an allocation
    /// it can prove unsound: a variable's register differs across control
    /// paths (paper Appendix D).
    UnsoundAllocation {
        /// The variable whose registers diverged.
        var: Symbol,
        /// Description of the divergence.
        message: String,
    },
    /// A register was read on a quantum simulation backend while in
    /// superposition: it holds no single classical value.
    Superposed {
        /// The variable whose register is superposed.
        var: Symbol,
    },
    /// The program swaps memory cells of a type wider than the memory's
    /// cell width (an internal invariant violation).
    CellTooWide {
        /// Width requested.
        requested: u32,
        /// Cell width available.
        available: u32,
    },
}

impl SpireError {
    /// Stable machine-readable error code.
    ///
    /// Front-end errors forward [`TowerError::code`]; backend variants
    /// use the `spire/` namespace. Codes are append-only (the serving
    /// layer exposes them in structured error bodies), so a published
    /// code never changes meaning.
    pub fn code(&self) -> &'static str {
        match self {
            SpireError::Front(e) => e.code(),
            SpireError::NoRegister { .. } => "spire/no-register",
            SpireError::SelfAssignment { .. } => "spire/self-assignment",
            SpireError::AliasedMemSwap { .. } => "spire/aliased-mem-swap",
            SpireError::UnsoundAllocation { .. } => "spire/unsound-allocation",
            SpireError::Superposed { .. } => "spire/superposed",
            SpireError::CellTooWide { .. } => "spire/cell-too-wide",
        }
    }

    /// The byte span this error carries intrinsically (front-end lex and
    /// parse errors only); see [`SpireError::locate`] for recovery.
    pub fn span(&self) -> Option<Span> {
        match self {
            SpireError::Front(e) => e.span(),
            _ => None,
        }
    }

    /// Best-effort byte span of this error within `source`.
    ///
    /// Front-end errors delegate to [`TowerError::locate`]; backend errors
    /// that mention a source variable are located at that variable's first
    /// identifier token. Errors about compiler-internal state
    /// ([`SpireError::CellTooWide`]) have no source span.
    pub fn locate(&self, source: &str) -> Option<Span> {
        match self {
            SpireError::Front(e) => e.locate(source),
            SpireError::NoRegister { var }
            | SpireError::SelfAssignment { var }
            | SpireError::AliasedMemSwap { var }
            | SpireError::UnsoundAllocation { var, .. }
            | SpireError::Superposed { var } => tower::locate_ident(source, var.as_str(), 0),
            SpireError::CellTooWide { .. } => None,
        }
    }
}

impl fmt::Display for SpireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpireError::Front(e) => write!(f, "{e}"),
            SpireError::NoRegister { var } => {
                write!(f, "variable `{var}` has no register")
            }
            SpireError::SelfAssignment { var } => write!(
                f,
                "assignment of `{var}` reads `{var}` itself (not reversible)"
            ),
            SpireError::AliasedMemSwap { var } => {
                write!(f, "memory swap `*{var} <-> {var}` aliases its pointer")
            }
            SpireError::UnsoundAllocation { var, message } => {
                write!(f, "unsound register allocation for `{var}`: {message}")
            }
            SpireError::Superposed { var } => {
                write!(f, "register of `{var}` is in superposition")
            }
            SpireError::CellTooWide {
                requested,
                available,
            } => write!(
                f,
                "memory cell of width {requested} exceeds cell width {available}"
            ),
        }
    }
}

impl Error for SpireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpireError::Front(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TowerError> for SpireError {
    fn from(e: TowerError) -> Self {
        SpireError::Front(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errs = [
            SpireError::NoRegister {
                var: Symbol::new("x"),
            },
            SpireError::SelfAssignment {
                var: Symbol::new("x"),
            },
            SpireError::CellTooWide {
                requested: 9,
                available: 8,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn locate_recovers_source_spans() {
        // Backend errors locate the variable they mention.
        let source = "fun f(x: uint) -> uint { let y <- x; return y; }";
        let err = SpireError::NoRegister {
            var: Symbol::new("y"),
        };
        let span = err.locate(source).unwrap();
        assert_eq!(&source[span.start..span.end], "y");

        // Front-end parse errors carry their span intrinsically, and
        // locate() returns the same one.
        let bad = "fun f( -> uint";
        let parse_err = SpireError::from(tower::parse(bad).unwrap_err());
        assert!(parse_err.span().is_some());
        assert_eq!(parse_err.span(), parse_err.locate(bad));

        // Internal-state errors have no source anchor.
        let internal = SpireError::CellTooWide {
            requested: 9,
            available: 8,
        };
        assert!(internal.locate(source).is_none());
    }

    #[test]
    fn codes_are_namespaced_and_distinct() {
        let errs = [
            SpireError::Front(TowerError::UnboundVar {
                var: Symbol::new("x"),
            }),
            SpireError::NoRegister {
                var: Symbol::new("x"),
            },
            SpireError::SelfAssignment {
                var: Symbol::new("x"),
            },
            SpireError::AliasedMemSwap {
                var: Symbol::new("p"),
            },
            SpireError::UnsoundAllocation {
                var: Symbol::new("x"),
                message: "m".into(),
            },
            SpireError::Superposed {
                var: Symbol::new("x"),
            },
            SpireError::CellTooWide {
                requested: 9,
                available: 8,
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in errs {
            let code = e.code();
            assert!(
                code.starts_with("spire/") || code.starts_with("tower/"),
                "code `{code}` must be namespaced"
            );
            assert!(seen.insert(code), "code `{code}` is duplicated");
        }
        // Front-end errors forward the tower code unchanged.
        let front = SpireError::Front(TowerError::UnknownFun {
            name: Symbol::new("f"),
        });
        assert_eq!(front.code(), "tower/unknown-fun");
    }
}
