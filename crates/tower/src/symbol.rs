//! Interned-ish symbols and deterministic fresh-name generation.

use std::fmt;
use std::sync::Arc;

/// A variable, function, or type name.
///
/// Symbols are cheaply cloneable (shared string storage) and compare by
/// string value.
///
/// # Example
///
/// ```
/// use tower::Symbol;
///
/// let a = Symbol::new("xs");
/// let b = Symbol::new("xs");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "xs");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Create a symbol from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// The symbol's textual name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "`{}`", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s))
    }
}

/// Deterministic generator of fresh symbols.
///
/// Fresh names contain a `%` character, which the lexer rejects in source
/// identifiers, so generated names can never collide with user names.
///
/// # Example
///
/// ```
/// use tower::NameGen;
///
/// let mut names = NameGen::new();
/// let a = names.fresh("tmp");
/// let b = names.fresh("tmp");
/// assert_ne!(a, b);
/// assert!(a.as_str().starts_with("tmp%"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct NameGen {
    counter: u64,
}

impl NameGen {
    /// A generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produce a fresh symbol with the given prefix.
    pub fn fresh(&mut self, prefix: &str) -> Symbol {
        let n = self.counter;
        self.counter += 1;
        Symbol::new(format!("{prefix}%{n}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn symbols_compare_by_value() {
        assert_eq!(Symbol::new("x"), Symbol::from("x"));
        assert_ne!(Symbol::new("x"), Symbol::new("y"));
    }

    #[test]
    fn fresh_names_are_distinct() {
        let mut names = NameGen::new();
        let set: HashSet<_> = (0..100).map(|_| names.fresh("t")).collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn symbols_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }
}
