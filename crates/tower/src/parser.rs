//! Recursive-descent parser for the Tower surface language.

use crate::ast::{BinOp, DepthExpr, Expr, FunDef, Program, Stmt, TypeDef};
use crate::error::{Span, TowerError};
use crate::lexer::{lex, Spanned, Token};
use crate::symbol::Symbol;
use crate::types::Type;

/// Parse a whole Tower program.
///
/// # Errors
///
/// Returns the first lexical or syntax error, with source position.
///
/// # Example
///
/// ```
/// let src = r#"
///     type list = (uint, ptr<list>);
///     fun id(x: uint) -> uint {
///         let out <- x;
///         return out;
///     }
/// "#;
/// let program = tower::parse(src).unwrap();
/// assert_eq!(program.funs.len(), 1);
/// assert_eq!(program.types.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Program, TowerError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.program()
}

/// Parse a single statement block (used by tests and the REPL-style tools).
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse_block(source: &str) -> Result<Vec<Stmt>, TowerError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut stmts = Vec::new();
    while !parser.at_end() {
        stmts.push(parser.stmt()?);
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    /// Position of the current token — or of the last token when the
    /// parser ran off the end of the input.
    fn here(&self) -> (usize, usize, Span) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((0, 0, Span::default()), |s| (s.line, s.col, s.span))
    }

    fn error(&self, message: impl Into<String>) -> TowerError {
        let (line, col, span) = self.here();
        TowerError::Parse {
            line,
            col,
            span,
            message: message.into(),
        }
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> Result<(), TowerError> {
        match self.peek() {
            Some(t) if t == expected => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {expected}, found {t}"))),
            None => Err(self.error(format!("expected {expected}, found end of input"))),
        }
    }

    fn try_eat(&mut self, expected: &Token) -> bool {
        if self.peek() == Some(expected) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<Symbol, TowerError> {
        match self.peek() {
            Some(Token::Ident(name)) => {
                let sym = Symbol::new(name);
                self.pos += 1;
                Ok(sym)
            }
            Some(t) => Err(self.error(format!("expected identifier, found {t}"))),
            None => Err(self.error("expected identifier, found end of input")),
        }
    }

    fn int(&mut self) -> Result<u64, TowerError> {
        match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(n)
            }
            Some(t) => Err(self.error(format!("expected integer, found {t}"))),
            None => Err(self.error("expected integer, found end of input")),
        }
    }

    // ---- top level -------------------------------------------------------

    fn program(&mut self) -> Result<Program, TowerError> {
        let mut types = Vec::new();
        let mut funs = Vec::new();
        while let Some(token) = self.peek() {
            match token {
                Token::KwType => types.push(self.typedef()?),
                Token::KwFun => funs.push(self.fundef()?),
                other => return Err(self.error(format!("expected `type` or `fun`, found {other}"))),
            }
        }
        Ok(Program { types, funs })
    }

    fn typedef(&mut self) -> Result<TypeDef, TowerError> {
        self.eat(&Token::KwType)?;
        let name = self.ident()?;
        self.eat(&Token::Eq)?;
        let ty = self.ty()?;
        self.eat(&Token::Semi)?;
        Ok(TypeDef { name, ty })
    }

    fn fundef(&mut self) -> Result<FunDef, TowerError> {
        self.eat(&Token::KwFun)?;
        let name = self.ident()?;
        let depth_param = if self.try_eat(&Token::LBracket) {
            let p = self.ident()?;
            self.eat(&Token::RBracket)?;
            Some(p)
        } else {
            None
        };
        self.eat(&Token::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let pname = self.ident()?;
                self.eat(&Token::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if !self.try_eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        self.eat(&Token::RArrow)?;
        let ret_ty = self.ty()?;
        self.eat(&Token::LBrace)?;
        let mut body = Vec::new();
        let mut ret_var = None;
        while !self.try_eat(&Token::RBrace) {
            let stmt = self.stmt()?;
            if let Stmt::Return(var) = &stmt {
                ret_var = Some(var.clone());
                self.eat(&Token::RBrace)?;
                break;
            }
            body.push(stmt);
        }
        let ret_var = ret_var
            .ok_or_else(|| self.error(format!("function `{name}` has no `return` statement")))?;
        Ok(FunDef {
            name,
            depth_param,
            params,
            ret_ty,
            body,
            ret_var,
        })
    }

    // ---- types -----------------------------------------------------------

    fn ty(&mut self) -> Result<Type, TowerError> {
        match self.advance() {
            Some(Token::KwUint) => Ok(Type::UInt),
            Some(Token::KwBool) => Ok(Type::Bool),
            Some(Token::KwPtr) => {
                self.eat(&Token::Lt)?;
                let inner = self.ty()?;
                self.eat(&Token::Gt)?;
                Ok(Type::ptr(inner))
            }
            Some(Token::LParen) => {
                if self.try_eat(&Token::RParen) {
                    return Ok(Type::Unit);
                }
                let a = self.ty()?;
                self.eat(&Token::Comma)?;
                let b = self.ty()?;
                self.eat(&Token::RParen)?;
                Ok(Type::pair(a, b))
            }
            Some(Token::Ident(name)) => Ok(Type::Named(Symbol::new(name))),
            Some(t) => Err(self.error(format!("expected a type, found {t}"))),
            None => Err(self.error("expected a type, found end of input")),
        }
    }

    // ---- statements ------------------------------------------------------

    fn block(&mut self) -> Result<Vec<Stmt>, TowerError> {
        self.eat(&Token::LBrace)?;
        let mut stmts = Vec::new();
        while !self.try_eat(&Token::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A `do`/`else` body: either a braced block or a single `if`/`with`
    /// statement (paper Figure 1 writes `do if is_empty { … } else with …`).
    fn block_or_single(&mut self) -> Result<Vec<Stmt>, TowerError> {
        match self.peek() {
            Some(Token::LBrace) => self.block(),
            Some(Token::KwIf) | Some(Token::KwWith) => Ok(vec![self.stmt()?]),
            Some(t) => Err(self.error(format!("expected a block, `if`, or `with`, found {t}"))),
            None => Err(self.error("expected a block, found end of input")),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, TowerError> {
        match self.peek() {
            Some(Token::KwLet) => {
                self.pos += 1;
                let var = self.ident()?;
                let reversed = match self.advance() {
                    Some(Token::LArrow) => false,
                    Some(Token::RArrow) => true,
                    Some(t) => return Err(self.error(format!("expected `<-` or `->`, found {t}"))),
                    None => return Err(self.error("expected `<-` or `->`")),
                };
                let expr = self.expr()?;
                self.eat(&Token::Semi)?;
                Ok(if reversed {
                    Stmt::UnLet { var, expr }
                } else {
                    Stmt::Let { var, expr }
                })
            }
            Some(Token::KwWith) => {
                self.pos += 1;
                let setup = self.block()?;
                self.eat(&Token::KwDo)?;
                let body = self.block_or_single()?;
                Ok(Stmt::With { setup, body })
            }
            Some(Token::KwIf) => {
                self.pos += 1;
                let cond = self.expr()?;
                let then_block = self.block()?;
                let else_block = if self.try_eat(&Token::KwElse) {
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                })
            }
            Some(Token::KwHad) => {
                self.pos += 1;
                let var = self.ident()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Hadamard(var))
            }
            Some(Token::KwAlloc) => {
                self.pos += 1;
                let var = self.ident()?;
                self.eat(&Token::Colon)?;
                let pointee = self.ty()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Alloc { var, pointee })
            }
            Some(Token::KwDealloc) => {
                self.pos += 1;
                let var = self.ident()?;
                self.eat(&Token::Colon)?;
                let pointee = self.ty()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Dealloc { var, pointee })
            }
            Some(Token::KwReturn) => {
                self.pos += 1;
                let var = self.ident()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Return(var))
            }
            Some(Token::Star) => {
                self.pos += 1;
                let ptr = self.ident()?;
                self.eat(&Token::SwapArrow)?;
                let val = self.ident()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::MemSwap(ptr, val))
            }
            Some(Token::Ident(_)) if self.peek2() == Some(&Token::SwapArrow) => {
                let a = self.ident()?;
                self.eat(&Token::SwapArrow)?;
                let b = self.ident()?;
                self.eat(&Token::Semi)?;
                Ok(Stmt::Swap(a, b))
            }
            Some(t) => Err(self.error(format!("expected a statement, found {t}"))),
            None => Err(self.error("expected a statement, found end of input")),
        }
    }

    // ---- expressions -----------------------------------------------------

    fn expr(&mut self) -> Result<Expr, TowerError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, TowerError> {
        let mut lhs = self.and_expr()?;
        while self.try_eat(&Token::OrOr) {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, TowerError> {
        let mut lhs = self.cmp_expr()?;
        while self.try_eat(&Token::AndAnd) {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, TowerError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::EqEq) => Some(BinOp::Eq),
            Some(Token::BangEq) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.add_expr()?;
            Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, TowerError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, TowerError> {
        let mut lhs = self.unary_expr()?;
        while self.try_eat(&Token::Star) {
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, TowerError> {
        match self.peek() {
            Some(Token::KwNot) => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.unary_expr()?)))
            }
            Some(Token::KwTest) => {
                self.pos += 1;
                Ok(Expr::Test(Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, TowerError> {
        let mut expr = self.atom()?;
        while self.try_eat(&Token::Dot) {
            let idx = self.int()?;
            if idx != 1 && idx != 2 {
                return Err(self.error(format!("projection must be .1 or .2, found .{idx}")));
            }
            expr = Expr::Proj(Box::new(expr), idx as u8);
        }
        Ok(expr)
    }

    fn atom(&mut self) -> Result<Expr, TowerError> {
        match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n;
                self.pos += 1;
                Ok(Expr::UIntLit(n))
            }
            Some(Token::KwTrue) => {
                self.pos += 1;
                Ok(Expr::BoolLit(true))
            }
            Some(Token::KwFalse) => {
                self.pos += 1;
                Ok(Expr::BoolLit(false))
            }
            Some(Token::KwNull) => {
                self.pos += 1;
                Ok(Expr::Null)
            }
            Some(Token::KwDefault) => {
                self.pos += 1;
                self.eat(&Token::Lt)?;
                let ty = self.ty()?;
                self.eat(&Token::Gt)?;
                Ok(Expr::Default(ty))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.try_eat(&Token::RParen) {
                    return Ok(Expr::UnitLit);
                }
                let first = self.expr()?;
                if self.try_eat(&Token::Comma) {
                    let second = self.expr()?;
                    self.eat(&Token::RParen)?;
                    Ok(Expr::Pair(Box::new(first), Box::new(second)))
                } else {
                    self.eat(&Token::RParen)?;
                    Ok(first)
                }
            }
            Some(Token::Ident(_)) => {
                let name = self.ident()?;
                // Call with depth: f[d](args); call without: f(args).
                if self.peek() == Some(&Token::LBracket) {
                    self.pos += 1;
                    let depth = self.depth_expr()?;
                    self.eat(&Token::RBracket)?;
                    self.eat(&Token::LParen)?;
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        fun: name,
                        depth: Some(depth),
                        args,
                    })
                } else if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let args = self.call_args()?;
                    Ok(Expr::Call {
                        fun: name,
                        depth: None,
                        args,
                    })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(t) => Err(self.error(format!("expected an expression, found {t}"))),
            None => Err(self.error("expected an expression, found end of input")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, TowerError> {
        let mut args = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.try_eat(&Token::Comma) {
                    break;
                }
            }
        }
        self.eat(&Token::RParen)?;
        Ok(args)
    }

    fn depth_expr(&mut self) -> Result<DepthExpr, TowerError> {
        match self.peek() {
            Some(Token::Int(n)) => {
                let n = *n as i64;
                self.pos += 1;
                Ok(DepthExpr::Lit(n))
            }
            Some(Token::Ident(_)) => {
                let var = self.ident()?;
                if self.try_eat(&Token::Minus) {
                    let k = self.int()? as i64;
                    Ok(DepthExpr::Sub(var, k))
                } else {
                    Ok(DepthExpr::Var(var))
                }
            }
            Some(t) => Err(self.error(format!("expected a depth expression, found {t}"))),
            None => Err(self.error("expected a depth expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 1 `length` program, adapted to this crate's
    /// surface syntax (explicit return type annotation).
    pub const LENGTH_SRC: &str = r#"
        type list = (uint, ptr<list>);
        fun length[n](xs: ptr<list>, acc: uint) -> uint {
            with {
                let is_empty <- xs == null;
            } do if is_empty {
                let out <- acc;
            } else with {
                let temp <- default<list>;
                *xs <-> temp;
                let next <- temp.2;
                let r <- acc + 1;
            } do {
                let out <- length[n-1](next, r);
            }
            return out;
        }
    "#;

    #[test]
    fn parses_figure_1_length() {
        let program = parse(LENGTH_SRC).unwrap();
        assert_eq!(program.types.len(), 1);
        let f = program.fun(&Symbol::new("length")).unwrap();
        assert_eq!(f.depth_param, Some(Symbol::new("n")));
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret_var, Symbol::new("out"));
        // Body is a single with-do whose do-block is an if-else.
        assert_eq!(f.body.len(), 1);
        match &f.body[0] {
            Stmt::With { setup, body } => {
                assert_eq!(setup.len(), 1);
                assert!(matches!(body[0], Stmt::If { .. }));
            }
            other => panic!("expected with-do, found {other:?}"),
        }
    }

    #[test]
    fn parses_figure_3_nested_ifs() {
        let src = r#"
            if x {
                if y {
                    with {
                        let t <- z;
                    } do {
                        if z {
                            let a <- not t;
                            let b <- true;
                        }
                    }
                }
            }
        "#;
        let stmts = parse_block(src).unwrap();
        assert_eq!(stmts.len(), 1);
        let Stmt::If {
            cond, then_block, ..
        } = &stmts[0]
        else {
            panic!("expected if");
        };
        assert_eq!(cond, &Expr::Var(Symbol::new("x")));
        assert!(matches!(&then_block[0], Stmt::If { .. }));
    }

    #[test]
    fn operator_precedence() {
        let stmts = parse_block("let s <- x && y && z;").unwrap();
        let Stmt::Let { expr, .. } = &stmts[0] else {
            panic!()
        };
        // Left-associative: (x && y) && z.
        let Expr::Bin(BinOp::And, lhs, _) = expr else {
            panic!()
        };
        assert!(matches!(**lhs, Expr::Bin(BinOp::And, _, _)));

        let stmts = parse_block("let v <- a + b * c;").unwrap();
        let Stmt::Let { expr, .. } = &stmts[0] else {
            panic!()
        };
        let Expr::Bin(BinOp::Add, _, rhs) = expr else {
            panic!("mul should bind tighter: {expr:?}")
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_swaps_and_memswap() {
        let stmts = parse_block("a <-> b; *p <-> v;").unwrap();
        assert_eq!(stmts[0], Stmt::Swap(Symbol::new("a"), Symbol::new("b")));
        assert_eq!(stmts[1], Stmt::MemSwap(Symbol::new("p"), Symbol::new("v")));
    }

    #[test]
    fn parses_alloc_dealloc() {
        let stmts = parse_block("alloc x : list; dealloc x : list;").unwrap();
        assert!(matches!(stmts[0], Stmt::Alloc { .. }));
        assert!(matches!(stmts[1], Stmt::Dealloc { .. }));
    }

    #[test]
    fn parses_projection_and_unlet() {
        let stmts = parse_block("let next -> temp.2;").unwrap();
        let Stmt::UnLet { expr, .. } = &stmts[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Proj(_, 2)));
    }

    #[test]
    fn parses_equality_sugar() {
        let stmts = parse_block("let e <- xs == null; let ne <- a != b;").unwrap();
        let Stmt::Let { expr, .. } = &stmts[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Bin(BinOp::Eq, _, _)));
    }

    #[test]
    fn missing_return_is_error() {
        let src = "fun f(x: uint) -> uint { let y <- x; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn reports_position() {
        let err = parse("fun f(x: uint) -> uint { let ; return x; }").unwrap_err();
        let TowerError::Parse { line, .. } = err else {
            panic!("expected parse error, got {err:?}")
        };
        assert_eq!(line, 1);
    }

    #[test]
    fn parses_call_with_depth() {
        let stmts = parse_block("let out <- length[n-1](next, r);").unwrap();
        let Stmt::Let { expr, .. } = &stmts[0] else {
            panic!()
        };
        let Expr::Call { depth, args, .. } = expr else {
            panic!()
        };
        assert_eq!(depth, &Some(DepthExpr::Sub(Symbol::new("n"), 1)));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn parses_hadamard() {
        let stmts = parse_block("had q;").unwrap();
        assert_eq!(stmts[0], Stmt::Hadamard(Symbol::new("q")));
    }
}
