//! Type checking for the core IR: the judgments of paper Appendix B.1
//! (Figures 18–20), including the two Spire-era changes — re-declaration of
//! a variable at its original type, and typing of the `H(x)` statement.

use std::collections::HashMap;

use crate::core_ir::{CoreBinOp, CoreExpr, CoreStmt, CoreValue};
use crate::error::TowerError;
use crate::symbol::Symbol;
use crate::types::{Type, TypeTable};

/// An ordered typing context Γ: later bindings shadow earlier ones.
pub type Context = Vec<(Symbol, Type)>;

/// Result of type checking a statement.
#[derive(Debug, Clone)]
pub struct TypeInfo {
    /// Every variable's type. Re-declarations are required to agree with
    /// the original type, so one entry per name suffices — which is also
    /// what lets the register allocator give re-declared variables their
    /// original registers (paper Appendix B.1 and Appendix D).
    pub var_types: HashMap<Symbol, Type>,
    /// The context Γ′ after the statement (the live variables).
    pub final_context: Context,
}

impl TypeInfo {
    /// Type of a variable, if it was ever declared.
    pub fn type_of(&self, var: &Symbol) -> Option<&Type> {
        self.var_types.get(var)
    }
}

/// How strictly to enforce rule S-If's `dom Γ ⊆ dom Γ'` side condition.
///
/// User-written programs are checked [`Strictness::Strict`]ly, exactly as
/// in paper Figure 20. The program-level optimizations split sequences
/// under `if`, which separates paired declare/un-declare statements into
/// individual `if`s; their output is re-checked with
/// [`Strictness::Relaxed`], which permits an `if`-body to un-declare an
/// outer variable (the dual of the paper's re-declaration relaxation, and
/// sound for the same reason: the statements arose from a well-formed
/// program by semantics-preserving rewrites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strictness {
    /// Enforce `dom Γ ⊆ dom Γ'` (paper Figure 20).
    #[default]
    Strict,
    /// Allow conditional un-declaration (optimizer output).
    Relaxed,
}

/// Check `Γ ⊢ s ⊣ Γ′` for a statement under an initial context, producing
/// the final context and the variable-type map.
///
/// # Errors
///
/// Reports unbound variables, type mismatches, violations of the S-If side
/// conditions, and re-declarations at a different type.
///
/// # Example
///
/// ```
/// use tower::{typecheck, CoreExpr, CoreStmt, CoreValue, Symbol, TypeTable, WordConfig};
///
/// let table = TypeTable::new(WordConfig::paper_default());
/// let stmt = CoreStmt::Assign {
///     var: Symbol::new("x"),
///     expr: CoreExpr::Value(CoreValue::UInt(3)),
/// };
/// let info = typecheck(&stmt, &[], &table).unwrap();
/// assert_eq!(info.final_context.len(), 1);
/// ```
pub fn typecheck(
    stmt: &CoreStmt,
    initial: &[(Symbol, Type)],
    table: &TypeTable,
) -> Result<TypeInfo, TowerError> {
    typecheck_with(stmt, initial, table, Strictness::Strict)
}

/// [`typecheck`] with an explicit [`Strictness`] mode.
///
/// # Errors
///
/// As [`typecheck`]; in relaxed mode, conditional un-declaration is
/// accepted instead of reported.
pub fn typecheck_with(
    stmt: &CoreStmt,
    initial: &[(Symbol, Type)],
    table: &TypeTable,
    strictness: Strictness,
) -> Result<TypeInfo, TowerError> {
    let mut checker = Checker {
        table,
        var_types: HashMap::new(),
        strictness,
    };
    for (var, ty) in initial {
        checker.note_type(var, ty)?;
    }
    let final_context = checker.stmt(stmt, initial.to_vec())?;
    Ok(TypeInfo {
        var_types: checker.var_types,
        final_context,
    })
}

struct Checker<'t> {
    table: &'t TypeTable,
    var_types: HashMap<Symbol, Type>,
    strictness: Strictness,
}

impl Checker<'_> {
    fn note_type(&mut self, var: &Symbol, ty: &Type) -> Result<(), TowerError> {
        match self.var_types.get(var) {
            None => {
                self.var_types.insert(var.clone(), ty.clone());
                Ok(())
            }
            Some(existing) => {
                if self.table.equiv(existing, ty)? {
                    Ok(())
                } else {
                    Err(TowerError::RedeclaredAtDifferentType {
                        var: var.clone(),
                        original: existing.to_string(),
                        new: ty.to_string(),
                    })
                }
            }
        }
    }

    fn lookup(&self, ctx: &Context, var: &Symbol) -> Result<Type, TowerError> {
        ctx.iter()
            .rev()
            .find(|(v, _)| v == var)
            .map(|(_, t)| t.clone())
            .ok_or_else(|| TowerError::UnboundVar { var: var.clone() })
    }

    fn value_type(&self, ctx: &Context, value: &CoreValue) -> Result<Type, TowerError> {
        Ok(match value {
            CoreValue::Unit => Type::Unit,
            CoreValue::UInt(_) => Type::UInt,
            CoreValue::Bool(_) => Type::Bool,
            CoreValue::Null(pointee) | CoreValue::PtrLit(pointee, _) => Type::ptr(pointee.clone()),
            CoreValue::Pair(a, b) => Type::pair(self.lookup(ctx, a)?, self.lookup(ctx, b)?),
            CoreValue::ZeroOf(ty) => ty.clone(),
        })
    }

    fn expr_type(&self, ctx: &Context, expr: &CoreExpr) -> Result<Type, TowerError> {
        match expr {
            CoreExpr::Value(v) => self.value_type(ctx, v),
            CoreExpr::Var(x) => self.lookup(ctx, x),
            CoreExpr::Proj1(x) | CoreExpr::Proj2(x) => {
                let ty = self.lookup(ctx, x)?;
                let resolved = self.table.resolve_shallow(&ty)?.clone();
                match resolved {
                    Type::Pair(a, b) => Ok(if matches!(expr, CoreExpr::Proj1(_)) {
                        *a
                    } else {
                        *b
                    }),
                    other => Err(TowerError::TypeMismatch {
                        context: format!("projection of `{x}`"),
                        expected: "a pair type".into(),
                        found: other.to_string(),
                    }),
                }
            }
            CoreExpr::Not(x) => {
                self.expect(ctx, x, &Type::Bool, "operand of `not`")?;
                Ok(Type::Bool)
            }
            CoreExpr::Test(x) => {
                let ty = self.lookup(ctx, x)?;
                let resolved = self.table.resolve_shallow(&ty)?;
                match resolved {
                    Type::UInt | Type::Ptr(_) => Ok(Type::Bool),
                    other => Err(TowerError::TypeMismatch {
                        context: format!("operand of `test {x}`"),
                        expected: "uint or a pointer".into(),
                        found: other.to_string(),
                    }),
                }
            }
            CoreExpr::Bin(op, a, b) => {
                let operand = match op {
                    CoreBinOp::And | CoreBinOp::Or => Type::Bool,
                    CoreBinOp::Add | CoreBinOp::Sub | CoreBinOp::Mul => Type::UInt,
                };
                self.expect(ctx, a, &operand, "left operand")?;
                self.expect(ctx, b, &operand, "right operand")?;
                Ok(operand)
            }
        }
    }

    fn expect(
        &self,
        ctx: &Context,
        var: &Symbol,
        expected: &Type,
        context: &str,
    ) -> Result<(), TowerError> {
        let found = self.lookup(ctx, var)?;
        if self.table.equiv(&found, expected)? {
            Ok(())
        } else {
            Err(TowerError::TypeMismatch {
                context: format!("{context} `{var}`"),
                expected: expected.to_string(),
                found: found.to_string(),
            })
        }
    }

    /// Remove the most recent binding of `var` (rule S-UnAssign's shape:
    /// `Γ, x:τ, Γ′` with `x ∉ Γ′` becomes `Γ, Γ′`).
    fn unbind(&self, ctx: &mut Context, var: &Symbol) -> Result<Type, TowerError> {
        let idx = ctx
            .iter()
            .rposition(|(v, _)| v == var)
            .ok_or_else(|| TowerError::UnboundVar { var: var.clone() })?;
        Ok(ctx.remove(idx).1)
    }

    fn stmt(&mut self, stmt: &CoreStmt, mut ctx: Context) -> Result<Context, TowerError> {
        match stmt {
            CoreStmt::Skip => Ok(ctx),
            CoreStmt::Seq(ss) => {
                for s in ss {
                    ctx = self.stmt(s, ctx)?;
                }
                Ok(ctx)
            }
            CoreStmt::Assign { var, expr } => {
                let ty = self.expr_type(&ctx, expr)?;
                self.note_type(var, &ty)?;
                ctx.push((var.clone(), ty));
                Ok(ctx)
            }
            CoreStmt::Unassign { var, expr } => {
                let ty = self.expr_type(&ctx, expr)?;
                let bound = self.unbind(&mut ctx, var)?;
                if !self.table.equiv(&bound, &ty)? {
                    return Err(TowerError::TypeMismatch {
                        context: format!("un-assignment of `{var}`"),
                        expected: bound.to_string(),
                        found: ty.to_string(),
                    });
                }
                Ok(ctx)
            }
            CoreStmt::Hadamard(var) => {
                self.expect(&ctx, var, &Type::Bool, "Hadamard operand")?;
                Ok(ctx)
            }
            CoreStmt::Swap(a, b) => {
                let ta = self.lookup(&ctx, a)?;
                let tb = self.lookup(&ctx, b)?;
                if !self.table.equiv(&ta, &tb)? {
                    return Err(TowerError::TypeMismatch {
                        context: format!("swap of `{a}` and `{b}`"),
                        expected: ta.to_string(),
                        found: tb.to_string(),
                    });
                }
                Ok(ctx)
            }
            CoreStmt::MemSwap { ptr, val } => {
                let tp = self.lookup(&ctx, ptr)?;
                let pointee = match self.table.resolve_shallow(&tp)? {
                    Type::Ptr(inner) => (**inner).clone(),
                    other => {
                        return Err(TowerError::TypeMismatch {
                            context: format!("memory swap through `{ptr}`"),
                            expected: "a pointer".into(),
                            found: other.to_string(),
                        })
                    }
                };
                self.expect(&ctx, val, &pointee, "memory-swap operand")?;
                Ok(ctx)
            }
            CoreStmt::If { cond, body } => {
                self.expect(&ctx, cond, &Type::Bool, "if-condition")?;
                if body.mod_set().contains(cond) {
                    return Err(TowerError::IfConditionModified { var: cond.clone() });
                }
                let before: Vec<Symbol> = ctx.iter().map(|(v, _)| v.clone()).collect();
                let after = self.stmt(body, ctx)?;
                if self.strictness == Strictness::Strict {
                    for var in &before {
                        if !after.iter().any(|(v, _)| v == var) {
                            return Err(TowerError::IfUndeclaresOuter { var: var.clone() });
                        }
                    }
                }
                Ok(after)
            }
            CoreStmt::With { .. } => {
                // `with { s₁ } do { s₂ }` types as its expansion
                // `s₁; s₂; I[s₁]`.
                let expanded = stmt.expand_with();
                self.stmt(&expanded, ctx)
            }
            CoreStmt::Alloc { var, pointee } => {
                let ty = Type::ptr(pointee.clone());
                self.note_type(var, &ty)?;
                ctx.push((var.clone(), ty));
                Ok(ctx)
            }
            CoreStmt::Dealloc { var, pointee } => {
                let bound = self.unbind(&mut ctx, var)?;
                let expected = Type::ptr(pointee.clone());
                if !self.table.equiv(&bound, &expected)? {
                    return Err(TowerError::TypeMismatch {
                        context: format!("dealloc of `{var}`"),
                        expected: expected.to_string(),
                        found: bound.to_string(),
                    });
                }
                Ok(ctx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::WordConfig;

    fn table() -> TypeTable {
        let mut t = TypeTable::new(WordConfig::paper_default());
        t.define(
            Symbol::new("list"),
            Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
        )
        .unwrap();
        t
    }

    fn assign(var: &str, expr: CoreExpr) -> CoreStmt {
        CoreStmt::Assign {
            var: Symbol::new(var),
            expr,
        }
    }

    #[test]
    fn assign_extends_context() {
        let info = typecheck(
            &assign("x", CoreExpr::Value(CoreValue::UInt(1))),
            &[],
            &table(),
        )
        .unwrap();
        assert_eq!(info.final_context, vec![(Symbol::new("x"), Type::UInt)]);
    }

    #[test]
    fn unassign_removes_binding() {
        let s = CoreStmt::seq(vec![
            assign("x", CoreExpr::Value(CoreValue::UInt(1))),
            CoreStmt::Unassign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(1)),
            },
        ]);
        let info = typecheck(&s, &[], &table()).unwrap();
        assert!(info.final_context.is_empty());
        assert_eq!(info.type_of(&Symbol::new("x")), Some(&Type::UInt));
    }

    #[test]
    fn redeclaration_at_same_type_is_allowed() {
        let s = CoreStmt::seq(vec![
            assign("out", CoreExpr::Value(CoreValue::UInt(1))),
            assign("out", CoreExpr::Value(CoreValue::UInt(2))),
        ]);
        assert!(typecheck(&s, &[], &table()).is_ok());
    }

    #[test]
    fn redeclaration_at_other_type_is_rejected() {
        let s = CoreStmt::seq(vec![
            assign("out", CoreExpr::Value(CoreValue::UInt(1))),
            assign("out", CoreExpr::Value(CoreValue::Bool(true))),
        ]);
        assert!(matches!(
            typecheck(&s, &[], &table()),
            Err(TowerError::RedeclaredAtDifferentType { .. })
        ));
    }

    #[test]
    fn redeclaration_at_equivalent_named_type_is_allowed() {
        // App. B.1 requires re-declaration *at the original type*; type
        // equality is structural equivalence, so the named type and its
        // unfolding are interchangeable.
        let list = Type::Named(Symbol::new("list"));
        let unfolding = Type::pair(Type::UInt, Type::ptr(list.clone()));
        let s = CoreStmt::seq(vec![
            assign("x", CoreExpr::Value(CoreValue::ZeroOf(list))),
            assign("x", CoreExpr::Value(CoreValue::ZeroOf(unfolding))),
        ]);
        assert!(typecheck(&s, &[], &table()).is_ok());
    }

    #[test]
    fn redeclaration_of_input_at_other_type_is_rejected() {
        // The rule also covers entry parameters: the initial context seeds
        // the one-type-per-name map.
        let ctx = vec![(Symbol::new("x"), Type::UInt)];
        let s = assign("x", CoreExpr::Value(CoreValue::Bool(true)));
        assert!(matches!(
            typecheck(&s, &ctx, &table()),
            Err(TowerError::RedeclaredAtDifferentType { .. })
        ));
    }

    #[test]
    fn redeclaration_after_unassign_still_pins_the_type() {
        // Un-assignment removes the binding from Γ but not from the
        // one-type-per-name map — that is what lets the register allocator
        // give re-declared variables their original registers (App. D).
        let s = CoreStmt::seq(vec![
            assign("x", CoreExpr::Value(CoreValue::UInt(1))),
            CoreStmt::Unassign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(1)),
            },
            assign("x", CoreExpr::Value(CoreValue::Bool(true))),
        ]);
        assert!(matches!(
            typecheck(&s, &[], &table()),
            Err(TowerError::RedeclaredAtDifferentType { .. })
        ));
    }

    #[test]
    fn unassign_at_wrong_type_is_rejected() {
        let s = CoreStmt::seq(vec![
            assign("x", CoreExpr::Value(CoreValue::UInt(1))),
            CoreStmt::Unassign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::Bool(true)),
            },
        ]);
        assert!(matches!(
            typecheck(&s, &[], &table()),
            Err(TowerError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn hadamard_requires_a_boolean_operand() {
        let ok = vec![(Symbol::new("q"), Type::Bool)];
        assert!(typecheck(&CoreStmt::Hadamard(Symbol::new("q")), &ok, &table()).is_ok());
        let bad = vec![(Symbol::new("q"), Type::UInt)];
        assert!(matches!(
            typecheck(&CoreStmt::Hadamard(Symbol::new("q")), &bad, &table()),
            Err(TowerError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn unknown_named_type_surfaces_from_projection() {
        let ghost = Type::Named(Symbol::new("ghost"));
        let s = CoreStmt::seq(vec![
            assign("p", CoreExpr::Value(CoreValue::ZeroOf(ghost))),
            assign("q", CoreExpr::Proj1(Symbol::new("p"))),
        ]);
        assert!(matches!(
            typecheck(&s, &[], &table()),
            Err(TowerError::UnknownType { .. })
        ));
    }

    #[test]
    fn one_bit_words_typecheck_arithmetic() {
        // WordConfig edge: 1-bit uints and 1-bit pointers. Typing is
        // width-agnostic, so arithmetic still checks; widths collapse to
        // the minimum the config allows.
        let config = WordConfig {
            uint_bits: 1,
            ptr_bits: 1,
        };
        let mut narrow = TypeTable::new(config);
        narrow
            .define(
                Symbol::new("list"),
                Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
            )
            .unwrap();
        let ctx = vec![
            (Symbol::new("a"), Type::UInt),
            (Symbol::new("b"), Type::UInt),
        ];
        let s = assign(
            "c",
            CoreExpr::Bin(CoreBinOp::Add, Symbol::new("a"), Symbol::new("b")),
        );
        assert!(typecheck(&s, &ctx, &narrow).is_ok());
        assert_eq!(narrow.width(&Type::UInt).unwrap(), 1);
        assert_eq!(narrow.width(&Type::Named(Symbol::new("list"))).unwrap(), 2);
    }

    #[test]
    fn zero_width_words_are_representable() {
        // WordConfig edge: a 0-bit uint denotes a zero-width register.
        // The type level permits it (the backend decides what to do with
        // an empty register); widths add up correctly through pairs.
        let config = WordConfig {
            uint_bits: 0,
            ptr_bits: 2,
        };
        let zero = TypeTable::new(config);
        assert_eq!(zero.width(&Type::UInt).unwrap(), 0);
        assert_eq!(
            zero.width(&Type::pair(Type::UInt, Type::Bool)).unwrap(),
            1,
            "only the bool contributes bits"
        );
        let s = assign("x", CoreExpr::Value(CoreValue::UInt(0)));
        assert!(typecheck(&s, &[], &zero).is_ok());
    }

    #[test]
    fn wide_words_exceeding_u64_still_typecheck() {
        // WordConfig edge: widths above 64 bits are fine at the type level
        // (simulator read/write ranges are the 64-bit-bounded layer).
        let config = WordConfig {
            uint_bits: 64,
            ptr_bits: 8,
        };
        let wide = TypeTable::new(config);
        let pair = Type::pair(Type::UInt, Type::UInt);
        assert_eq!(wide.width(&pair).unwrap(), 128);
        let ctx = vec![(Symbol::new("a"), pair)];
        let s = assign("b", CoreExpr::Proj2(Symbol::new("a")));
        assert!(typecheck(&s, &ctx, &wide).is_ok());
    }

    #[test]
    fn uint_literal_wider_than_the_word_still_types() {
        // Literal truncation is a code-generation concern, not a typing
        // one: `let k <- 255` checks under a 2-bit word config.
        let config = WordConfig {
            uint_bits: 2,
            ptr_bits: 2,
        };
        let narrow = TypeTable::new(config);
        let s = assign("k", CoreExpr::Value(CoreValue::UInt(255)));
        let info = typecheck(&s, &[], &narrow).unwrap();
        assert_eq!(info.type_of(&Symbol::new("k")), Some(&Type::UInt));
    }

    #[test]
    fn if_condition_must_be_bool_and_unmodified() {
        let ctx = vec![(Symbol::new("c"), Type::Bool)];
        let bad = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(assign("c", CoreExpr::Value(CoreValue::Bool(true)))),
        };
        assert!(matches!(
            typecheck(&bad, &ctx, &table()),
            Err(TowerError::IfConditionModified { .. })
        ));

        let not_bool = vec![(Symbol::new("c"), Type::UInt)];
        let s = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::Skip),
        };
        assert!(typecheck(&s, &not_bool, &table()).is_err());
    }

    #[test]
    fn if_body_may_not_undeclare_outer() {
        let ctx = vec![
            (Symbol::new("c"), Type::Bool),
            (Symbol::new("x"), Type::UInt),
        ];
        let bad = CoreStmt::If {
            cond: Symbol::new("c"),
            body: Box::new(CoreStmt::Unassign {
                var: Symbol::new("x"),
                expr: CoreExpr::Value(CoreValue::UInt(0)),
            }),
        };
        assert!(matches!(
            typecheck(&bad, &ctx, &table()),
            Err(TowerError::IfUndeclaresOuter { .. })
        ));
    }

    #[test]
    fn projection_through_named_type() {
        let list = Type::Named(Symbol::new("list"));
        let ctx = vec![(Symbol::new("node"), list)];
        let s = assign("next", CoreExpr::Proj2(Symbol::new("node")));
        let info = typecheck(&s, &ctx, &table()).unwrap();
        let next_ty = info.type_of(&Symbol::new("next")).unwrap();
        assert!(table()
            .equiv(next_ty, &Type::ptr(Type::Named(Symbol::new("list"))))
            .unwrap());
    }

    #[test]
    fn memswap_types_cell_against_pointee() {
        let list = Type::Named(Symbol::new("list"));
        let ctx = vec![
            (Symbol::new("p"), Type::ptr(list.clone())),
            (Symbol::new("v"), list),
            (Symbol::new("w"), Type::UInt),
        ];
        let good = CoreStmt::MemSwap {
            ptr: Symbol::new("p"),
            val: Symbol::new("v"),
        };
        assert!(typecheck(&good, &ctx, &table()).is_ok());
        let bad = CoreStmt::MemSwap {
            ptr: Symbol::new("p"),
            val: Symbol::new("w"),
        };
        assert!(typecheck(&bad, &ctx, &table()).is_err());
    }

    #[test]
    fn with_types_as_expansion() {
        // with { t <- 1 } do { out <- t } leaves only `out` live.
        let s = CoreStmt::With {
            setup: Box::new(assign("t", CoreExpr::Value(CoreValue::UInt(1)))),
            body: Box::new(assign("out", CoreExpr::Var(Symbol::new("t")))),
        };
        let info = typecheck(&s, &[], &table()).unwrap();
        assert_eq!(info.final_context, vec![(Symbol::new("out"), Type::UInt)]);
    }

    #[test]
    fn alloc_dealloc_roundtrip() {
        let list = Type::Named(Symbol::new("list"));
        let s = CoreStmt::seq(vec![
            CoreStmt::Alloc {
                var: Symbol::new("p"),
                pointee: list.clone(),
            },
            CoreStmt::Dealloc {
                var: Symbol::new("p"),
                pointee: list,
            },
        ]);
        let info = typecheck(&s, &[], &table()).unwrap();
        assert!(info.final_context.is_empty());
    }

    #[test]
    fn arithmetic_requires_uint() {
        let ctx = vec![(Symbol::new("b"), Type::Bool)];
        let s = assign(
            "x",
            CoreExpr::Bin(CoreBinOp::Add, Symbol::new("b"), Symbol::new("b")),
        );
        assert!(typecheck(&s, &ctx, &table()).is_err());
    }

    #[test]
    fn unbound_variable_reported() {
        let s = assign("x", CoreExpr::Var(Symbol::new("ghost")));
        assert!(matches!(
            typecheck(&s, &[], &table()),
            Err(TowerError::UnboundVar { .. })
        ));
    }
}
