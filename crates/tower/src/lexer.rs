//! Lexer for the Tower surface language.

use std::fmt;

use crate::error::{Span, TowerError};

/// A lexical token of the Tower surface language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier.
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),

    /// `type`
    KwType,
    /// `fun`
    KwFun,
    /// `with`
    KwWith,
    /// `do`
    KwDo,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `let`
    KwLet,
    /// `return`
    KwReturn,
    /// `null`
    KwNull,
    /// `true`
    KwTrue,
    /// `false`
    KwFalse,
    /// `default`
    KwDefault,
    /// `not`
    KwNot,
    /// `test`
    KwTest,
    /// `had` (Hadamard statement)
    KwHad,
    /// `alloc`
    KwAlloc,
    /// `dealloc`
    KwDealloc,
    /// `uint`
    KwUint,
    /// `bool`
    KwBool,
    /// `ptr`
    KwPtr,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<-` (assignment)
    LArrow,
    /// `->` (un-assignment / return type)
    RArrow,
    /// `<->` (swap)
    SwapArrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Token::Ident(s) => return write!(f, "identifier `{s}`"),
            Token::Int(n) => return write!(f, "integer `{n}`"),
            Token::KwType => "type",
            Token::KwFun => "fun",
            Token::KwWith => "with",
            Token::KwDo => "do",
            Token::KwIf => "if",
            Token::KwElse => "else",
            Token::KwLet => "let",
            Token::KwReturn => "return",
            Token::KwNull => "null",
            Token::KwTrue => "true",
            Token::KwFalse => "false",
            Token::KwDefault => "default",
            Token::KwNot => "not",
            Token::KwTest => "test",
            Token::KwHad => "had",
            Token::KwAlloc => "alloc",
            Token::KwDealloc => "dealloc",
            Token::KwUint => "uint",
            Token::KwBool => "bool",
            Token::KwPtr => "ptr",
            Token::LParen => "(",
            Token::RParen => ")",
            Token::LBrace => "{",
            Token::RBrace => "}",
            Token::LBracket => "[",
            Token::RBracket => "]",
            Token::Lt => "<",
            Token::Gt => ">",
            Token::Comma => ",",
            Token::Semi => ";",
            Token::Colon => ":",
            Token::Dot => ".",
            Token::Eq => "=",
            Token::Star => "*",
            Token::Plus => "+",
            Token::Minus => "-",
            Token::AndAnd => "&&",
            Token::OrOr => "||",
            Token::EqEq => "==",
            Token::BangEq => "!=",
            Token::LArrow => "<-",
            Token::RArrow => "->",
            Token::SwapArrow => "<->",
        };
        write!(f, "`{s}`")
    }
}

/// A token paired with its source position (1-based line and column) and
/// byte span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
    /// Byte span of the token's text in the source.
    pub span: Span,
}

/// Tokenize Tower source text.
///
/// Supports `//` line comments and `/* … */` block comments.
///
/// # Errors
///
/// Returns [`TowerError::Lex`] on unrecognized characters or unterminated
/// block comments.
///
/// # Example
///
/// ```
/// use tower::lexer::{lex, Token};
///
/// let tokens = lex("let x <- y + 1;").unwrap();
/// assert_eq!(tokens[0].token, Token::KwLet);
/// assert_eq!(tokens[2].token, Token::LArrow);
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, TowerError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;
    let mut byte = 0usize;

    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            byte += chars[i].len_utf8();
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let tstart = byte;
        macro_rules! push {
            ($token:expr) => {
                tokens.push(Spanned {
                    token: $token,
                    line: tline,
                    col: tcol,
                    span: Span::new(tstart, byte),
                })
            };
        }

        if c.is_whitespace() {
            advance!();
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
                continue;
            }
            if chars[i + 1] == '*' {
                advance!();
                advance!();
                let mut closed = false;
                while i + 1 < chars.len() {
                    if chars[i] == '*' && chars[i + 1] == '/' {
                        advance!();
                        advance!();
                        closed = true;
                        break;
                    }
                    advance!();
                }
                if !closed {
                    return Err(TowerError::Lex {
                        line: tline,
                        col: tcol,
                        span: Span::new(tstart, source.len()),
                        message: "unterminated block comment".into(),
                    });
                }
                continue;
            }
        }
        // Identifiers and keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                advance!();
            }
            let word: String = chars[start..i].iter().collect();
            let token = match word.as_str() {
                "type" => Token::KwType,
                "fun" => Token::KwFun,
                "with" => Token::KwWith,
                "do" => Token::KwDo,
                "if" => Token::KwIf,
                "else" => Token::KwElse,
                "let" => Token::KwLet,
                "return" => Token::KwReturn,
                "null" => Token::KwNull,
                "true" => Token::KwTrue,
                "false" => Token::KwFalse,
                "default" => Token::KwDefault,
                "not" => Token::KwNot,
                "test" => Token::KwTest,
                "had" => Token::KwHad,
                "alloc" => Token::KwAlloc,
                "dealloc" => Token::KwDealloc,
                "uint" => Token::KwUint,
                "bool" => Token::KwBool,
                "ptr" => Token::KwPtr,
                _ => Token::Ident(word),
            };
            push!(token);
            continue;
        }
        // Integers.
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && chars[i].is_ascii_digit() {
                advance!();
            }
            let text: String = chars[start..i].iter().collect();
            let value = text.parse::<u64>().map_err(|_| TowerError::Lex {
                line: tline,
                col: tcol,
                span: Span::new(tstart, byte),
                message: format!("integer literal `{text}` out of range"),
            })?;
            push!(Token::Int(value));
            continue;
        }
        // Multi-character operators, longest first.
        let rest: String = chars[i..chars.len().min(i + 3)].iter().collect();
        let (token, len) = if rest.starts_with("<->") {
            (Token::SwapArrow, 3)
        } else if rest.starts_with("<-") {
            (Token::LArrow, 2)
        } else if rest.starts_with("->") {
            (Token::RArrow, 2)
        } else if rest.starts_with("&&") {
            (Token::AndAnd, 2)
        } else if rest.starts_with("||") {
            (Token::OrOr, 2)
        } else if rest.starts_with("==") {
            (Token::EqEq, 2)
        } else if rest.starts_with("!=") {
            (Token::BangEq, 2)
        } else {
            let single = match c {
                '(' => Token::LParen,
                ')' => Token::RParen,
                '{' => Token::LBrace,
                '}' => Token::RBrace,
                '[' => Token::LBracket,
                ']' => Token::RBracket,
                '<' => Token::Lt,
                '>' => Token::Gt,
                ',' => Token::Comma,
                ';' => Token::Semi,
                ':' => Token::Colon,
                '.' => Token::Dot,
                '=' => Token::Eq,
                '*' => Token::Star,
                '+' => Token::Plus,
                '-' => Token::Minus,
                other => {
                    return Err(TowerError::Lex {
                        line: tline,
                        col: tcol,
                        span: Span::new(tstart, tstart + c.len_utf8()),
                        message: format!("unexpected character `{other}`"),
                    })
                }
            };
            (single, 1)
        };
        for _ in 0..len {
            advance!();
        }
        push!(token);
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_assignment() {
        assert_eq!(
            kinds("let x <- acc + 1;"),
            vec![
                Token::KwLet,
                Token::Ident("x".into()),
                Token::LArrow,
                Token::Ident("acc".into()),
                Token::Plus,
                Token::Int(1),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn distinguishes_arrows() {
        assert_eq!(
            kinds("<- -> <-> < - >"),
            vec![
                Token::LArrow,
                Token::RArrow,
                Token::SwapArrow,
                Token::Lt,
                Token::Minus,
                Token::Gt,
            ]
        );
    }

    #[test]
    fn lexes_memswap() {
        assert_eq!(
            kinds("*xs <-> temp;"),
            vec![
                Token::Star,
                Token::Ident("xs".into()),
                Token::SwapArrow,
                Token::Ident("temp".into()),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("x // whole line\n/* block\n comment */ y"),
            vec![Token::Ident("x".into()), Token::Ident("y".into())]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(matches!(lex("/* oops"), Err(TowerError::Lex { .. })));
    }

    #[test]
    fn positions_are_tracked() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn keywords_are_recognized() {
        assert_eq!(
            kinds("with do if else default ptr"),
            vec![
                Token::KwWith,
                Token::KwDo,
                Token::KwIf,
                Token::KwElse,
                Token::KwDefault,
                Token::KwPtr,
            ]
        );
    }

    #[test]
    fn bad_character_is_error() {
        assert!(matches!(lex("let @"), Err(TowerError::Lex { .. })));
    }
}
