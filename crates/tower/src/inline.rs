//! Function inlining.
//!
//! Tower has no runtime call stack: every call is inlined at compile time
//! (paper Section 3.1). A definition `fun f[n](…)` is a compile-time family
//! of functions indexed by the recursion depth `n`; a call `f[n-1](…)`
//! splices a freshly renamed copy of the body, and a call at depth ≤ 0
//! evaluates to the zero value of the return type, which terminates the
//! unrolling.

use std::collections::HashMap;

use crate::ast::{DepthExpr, Expr, FunDef, Program, Stmt};
use crate::error::TowerError;
use crate::symbol::{NameGen, Symbol};

/// Upper bound on the number of statements inlining may produce, guarding
/// against recursion without a decreasing depth annotation.
const INLINE_BUDGET: usize = 4_000_000;

/// Inline the body of `entry` at recursion depth `depth`, producing a
/// call-free statement block. The entry function's parameters remain free
/// variables (they become the compiled circuit's input registers) and its
/// return variable keeps its name.
///
/// # Errors
///
/// Reports unknown functions, arity mismatches, non-variable call arguments,
/// calls in un-assignments, and exceeded expansion budgets.
///
/// # Example
///
/// ```
/// use tower::{inline, parse, NameGen, Symbol};
///
/// let src = r#"
///     fun count[n](acc: uint) -> uint {
///         let r <- acc + 1;
///         let out <- count[n-1](r);
///         return out;
///     }
/// "#;
/// let program = parse(src).unwrap();
/// let mut names = NameGen::new();
/// let body = inline(&program, &Symbol::new("count"), 3, &mut names).unwrap();
/// assert!(!body.is_empty());
/// ```
pub fn inline(
    program: &Program,
    entry: &Symbol,
    depth: i64,
    names: &mut NameGen,
) -> Result<Vec<Stmt>, TowerError> {
    let fun = program.fun(entry).ok_or_else(|| TowerError::UnknownFun {
        name: entry.clone(),
    })?;
    let mut inliner = Inliner {
        program,
        names,
        produced: 0,
    };
    // The entry body is processed with an identity substitution: parameters
    // and the return variable keep their names.
    let mut subst = Subst::identity();
    let depth_env = fun.depth_param.as_ref().map(|p| (p.clone(), depth));
    if fun.depth_param.is_some() && depth <= 0 {
        // A whole-program entry at depth <= 0 is just the zero result.
        return Ok(vec![Stmt::Let {
            var: fun.ret_var.clone(),
            expr: Expr::Default(fun.ret_ty.clone()),
        }]);
    }
    inliner.block(&fun.body, &mut subst, &depth_env)
}

/// A variable renaming. `None` mappings are created on demand: in freshening
/// mode unseen variables get fresh names; in identity mode they map to
/// themselves.
struct Subst {
    map: HashMap<Symbol, Symbol>,
    freshen: bool,
}

impl Subst {
    fn identity() -> Self {
        Subst {
            map: HashMap::new(),
            freshen: false,
        }
    }

    fn freshening(map: HashMap<Symbol, Symbol>) -> Self {
        Subst { map, freshen: true }
    }

    fn apply(&mut self, var: &Symbol, names: &mut NameGen) -> Symbol {
        if let Some(mapped) = self.map.get(var) {
            return mapped.clone();
        }
        let target = if self.freshen {
            names.fresh(var.as_str())
        } else {
            var.clone()
        };
        self.map.insert(var.clone(), target.clone());
        target
    }
}

struct Inliner<'p, 'n> {
    program: &'p Program,
    names: &'n mut NameGen,
    produced: usize,
}

impl Inliner<'_, '_> {
    fn charge(&mut self, fun: &Symbol) -> Result<(), TowerError> {
        self.produced += 1;
        if self.produced > INLINE_BUDGET {
            Err(TowerError::InlineBudgetExceeded { fun: fun.clone() })
        } else {
            Ok(())
        }
    }

    fn block(
        &mut self,
        stmts: &[Stmt],
        subst: &mut Subst,
        depth_env: &Option<(Symbol, i64)>,
    ) -> Result<Vec<Stmt>, TowerError> {
        let mut out = Vec::new();
        for stmt in stmts {
            self.stmt(stmt, subst, depth_env, &mut out)?;
        }
        Ok(out)
    }

    fn stmt(
        &mut self,
        stmt: &Stmt,
        subst: &mut Subst,
        depth_env: &Option<(Symbol, i64)>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), TowerError> {
        match stmt {
            Stmt::Let { var, expr } => {
                if let Expr::Call { fun, depth, args } = expr {
                    let target = subst.apply(var, self.names);
                    self.charge(fun)?;
                    self.inline_call(fun, depth, args, target, subst, depth_env, out)
                } else {
                    self.reject_nested_calls(expr)?;
                    let var = subst.apply(var, self.names);
                    let expr = self.rename_expr(expr, subst);
                    out.push(Stmt::Let { var, expr });
                    Ok(())
                }
            }
            Stmt::UnLet { var, expr } => {
                if matches!(expr, Expr::Call { .. }) {
                    return Err(TowerError::UnloweredConstruct {
                        construct: "function call in un-assignment".into(),
                    });
                }
                self.reject_nested_calls(expr)?;
                let var = subst.apply(var, self.names);
                let expr = self.rename_expr(expr, subst);
                out.push(Stmt::UnLet { var, expr });
                Ok(())
            }
            Stmt::With { setup, body } => {
                let setup = self.block(setup, subst, depth_env)?;
                let body = self.block(body, subst, depth_env)?;
                out.push(Stmt::With { setup, body });
                Ok(())
            }
            Stmt::If {
                cond,
                then_block,
                else_block,
            } => {
                self.reject_nested_calls(cond)?;
                let cond = self.rename_expr(cond, subst);
                let then_block = self.block(then_block, subst, depth_env)?;
                let else_block = else_block
                    .as_ref()
                    .map(|b| self.block(b, subst, depth_env))
                    .transpose()?;
                out.push(Stmt::If {
                    cond,
                    then_block,
                    else_block,
                });
                Ok(())
            }
            Stmt::Swap(a, b) => {
                let a = subst.apply(a, self.names);
                let b = subst.apply(b, self.names);
                out.push(Stmt::Swap(a, b));
                Ok(())
            }
            Stmt::MemSwap(p, v) => {
                let p = subst.apply(p, self.names);
                let v = subst.apply(v, self.names);
                out.push(Stmt::MemSwap(p, v));
                Ok(())
            }
            Stmt::Hadamard(x) => {
                let x = subst.apply(x, self.names);
                out.push(Stmt::Hadamard(x));
                Ok(())
            }
            Stmt::Alloc { var, pointee } => {
                let var = subst.apply(var, self.names);
                out.push(Stmt::Alloc {
                    var,
                    pointee: pointee.clone(),
                });
                Ok(())
            }
            Stmt::Dealloc { var, pointee } => {
                let var = subst.apply(var, self.names);
                out.push(Stmt::Dealloc {
                    var,
                    pointee: pointee.clone(),
                });
                Ok(())
            }
            Stmt::Return(_) => Err(TowerError::UnloweredConstruct {
                construct: "return outside function tail position".into(),
            }),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn inline_call(
        &mut self,
        fun: &Symbol,
        depth: &Option<DepthExpr>,
        args: &[Expr],
        target: Symbol,
        subst: &mut Subst,
        depth_env: &Option<(Symbol, i64)>,
        out: &mut Vec<Stmt>,
    ) -> Result<(), TowerError> {
        let callee: &FunDef = self
            .program
            .fun(fun)
            .ok_or_else(|| TowerError::UnknownFun { name: fun.clone() })?;
        if callee.params.len() != args.len() {
            return Err(TowerError::ArityMismatch {
                fun: fun.clone(),
                expected: callee.params.len(),
                found: args.len(),
            });
        }
        // Resolve the depth argument in the caller's depth environment.
        let depth_value = match (&callee.depth_param, depth) {
            (Some(_), Some(d)) => {
                let env = depth_env.as_ref().map(|(p, v)| (p, *v));
                Some(d.eval(env)?)
            }
            (Some(_), None) => {
                return Err(TowerError::BadDepthExpr {
                    message: format!("call to `{fun}` is missing its depth argument"),
                })
            }
            (None, Some(_)) => {
                return Err(TowerError::BadDepthExpr {
                    message: format!("`{fun}` takes no depth argument"),
                })
            }
            (None, None) => None,
        };

        // Depth exhausted: the call is the zero value of the return type.
        if let Some(d) = depth_value {
            if d <= 0 {
                out.push(Stmt::Let {
                    var: target,
                    expr: Expr::Default(callee.ret_ty.clone()),
                });
                return Ok(());
            }
        }

        // Bind parameters to (renamed) argument variables; the return
        // variable becomes the call's target. Everything else freshens.
        let mut map = HashMap::new();
        for ((param, _), arg) in callee.params.iter().zip(args) {
            let arg_var = match arg {
                Expr::Var(v) => subst.apply(v, self.names),
                _ => {
                    return Err(TowerError::UnloweredConstruct {
                        construct: format!(
                            "non-variable argument in call to `{fun}` (bind it with `let` first)"
                        ),
                    })
                }
            };
            map.insert(param.clone(), arg_var);
        }
        map.insert(callee.ret_var.clone(), target);
        let mut callee_subst = Subst::freshening(map);
        let callee_env = callee.depth_param.clone().zip(depth_value);
        let body = self.block(&callee.body, &mut callee_subst, &callee_env)?;
        out.extend(body);
        Ok(())
    }

    fn rename_expr(&mut self, expr: &Expr, subst: &mut Subst) -> Expr {
        match expr {
            Expr::Var(v) => Expr::Var(subst.apply(v, self.names)),
            Expr::UIntLit(_) | Expr::BoolLit(_) | Expr::UnitLit | Expr::Null | Expr::Default(_) => {
                expr.clone()
            }
            Expr::Pair(a, b) => Expr::Pair(
                Box::new(self.rename_expr(a, subst)),
                Box::new(self.rename_expr(b, subst)),
            ),
            Expr::Proj(e, i) => Expr::Proj(Box::new(self.rename_expr(e, subst)), *i),
            Expr::Not(e) => Expr::Not(Box::new(self.rename_expr(e, subst))),
            Expr::Test(e) => Expr::Test(Box::new(self.rename_expr(e, subst))),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(self.rename_expr(a, subst)),
                Box::new(self.rename_expr(b, subst)),
            ),
            Expr::Call { .. } => expr.clone(), // rejected separately
        }
    }

    fn reject_nested_calls(&self, expr: &Expr) -> Result<(), TowerError> {
        let nested = match expr {
            Expr::Call { .. } => true,
            Expr::Pair(a, b) | Expr::Bin(_, a, b) => contains_call(a) || contains_call(b),
            Expr::Proj(e, _) | Expr::Not(e) | Expr::Test(e) => contains_call(e),
            _ => false,
        };
        if nested {
            Err(TowerError::UnloweredConstruct {
                construct: "function call nested inside an expression".into(),
            })
        } else {
            Ok(())
        }
    }
}

fn contains_call(expr: &Expr) -> bool {
    match expr {
        Expr::Call { .. } => true,
        Expr::Pair(a, b) | Expr::Bin(_, a, b) => contains_call(a) || contains_call(b),
        Expr::Proj(e, _) | Expr::Not(e) | Expr::Test(e) => contains_call(e),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const COUNT_SRC: &str = r#"
        fun count[n](acc: uint) -> uint {
            let r <- acc + 1;
            let out <- count[n-1](r);
            return out;
        }
    "#;

    fn stmt_count(stmts: &[Stmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                Stmt::With { setup, body } => 1 + stmt_count(setup) + stmt_count(body),
                Stmt::If {
                    then_block,
                    else_block,
                    ..
                } => 1 + stmt_count(then_block) + else_block.as_ref().map_or(0, |b| stmt_count(b)),
                _ => 1,
            })
            .sum()
    }

    #[test]
    fn unrolls_to_requested_depth() {
        let program = parse(COUNT_SRC).unwrap();
        let mut names = NameGen::new();
        let d2 = inline(&program, &Symbol::new("count"), 2, &mut names).unwrap();
        let d5 = inline(&program, &Symbol::new("count"), 5, &mut names).unwrap();
        // Each level contributes one `let r` and the final level one default.
        assert_eq!(stmt_count(&d2), 2 * 2 + 1 - 2); // 2 lets + 1 default per shape
        assert!(stmt_count(&d5) > stmt_count(&d2));
    }

    #[test]
    fn depth_zero_is_default() {
        let program = parse(COUNT_SRC).unwrap();
        let mut names = NameGen::new();
        let body = inline(&program, &Symbol::new("count"), 0, &mut names).unwrap();
        assert_eq!(body.len(), 1);
        assert!(matches!(
            &body[0],
            Stmt::Let {
                expr: Expr::Default(_),
                ..
            }
        ));
    }

    #[test]
    fn locals_are_freshened_per_instance() {
        let program = parse(COUNT_SRC).unwrap();
        let mut names = NameGen::new();
        let body = inline(&program, &Symbol::new("count"), 3, &mut names).unwrap();
        // Collect all let-bound names; each inlined `r` must be distinct.
        let mut lets = Vec::new();
        fn collect(stmts: &[Stmt], lets: &mut Vec<Symbol>) {
            for s in stmts {
                if let Stmt::Let { var, .. } = s {
                    lets.push(var.clone());
                }
            }
        }
        collect(&body, &mut lets);
        let distinct: std::collections::HashSet<_> = lets.iter().collect();
        assert_eq!(
            distinct.len(),
            lets.len(),
            "duplicate let-bound names: {lets:?}"
        );
    }

    #[test]
    fn entry_params_stay_free() {
        let program = parse(COUNT_SRC).unwrap();
        let mut names = NameGen::new();
        let body = inline(&program, &Symbol::new("count"), 1, &mut names).unwrap();
        // First statement reads the entry parameter by its source name.
        let Stmt::Let { expr, .. } = &body[0] else {
            panic!()
        };
        let Expr::Bin(_, lhs, _) = expr else { panic!() };
        assert_eq!(**lhs, Expr::Var(Symbol::new("acc")));
    }

    #[test]
    fn non_variable_argument_is_rejected() {
        let src = r#"
            fun g(x: uint) -> uint { let out <- x; return out; }
            fun f() -> uint { let out <- g(1 + 2); return out; }
        "#;
        let program = parse(src).unwrap();
        let mut names = NameGen::new();
        assert!(matches!(
            inline(&program, &Symbol::new("f"), 0, &mut names),
            Err(TowerError::UnloweredConstruct { .. })
        ));
    }

    #[test]
    fn helper_without_depth_inlines() {
        let src = r#"
            fun double(x: uint) -> uint {
                let out <- x + x;
                return out;
            }
            fun f(a: uint) -> uint {
                let out <- double(a);
                return out;
            }
        "#;
        let program = parse(src).unwrap();
        let mut names = NameGen::new();
        let body = inline(&program, &Symbol::new("f"), 0, &mut names).unwrap();
        assert_eq!(body.len(), 1);
        let Stmt::Let { var, .. } = &body[0] else {
            panic!()
        };
        assert_eq!(var, &Symbol::new("out"));
    }

    #[test]
    fn unknown_function_is_error() {
        let program = parse(COUNT_SRC).unwrap();
        let mut names = NameGen::new();
        assert!(matches!(
            inline(&program, &Symbol::new("missing"), 1, &mut names),
            Err(TowerError::UnknownFun { .. })
        ));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let src = r#"
            fun g(x: uint, y: uint) -> uint { let out <- x + y; return out; }
            fun f(a: uint) -> uint { let out <- g(a); return out; }
        "#;
        let program = parse(src).unwrap();
        let mut names = NameGen::new();
        assert!(matches!(
            inline(&program, &Symbol::new("f"), 0, &mut names),
            Err(TowerError::ArityMismatch { .. })
        ));
    }
}
