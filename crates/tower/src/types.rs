//! Tower's data types (paper Figure 13) and the bit-level layout rules the
//! compiler uses for them.

use std::collections::HashMap;
use std::fmt;

use crate::error::TowerError;
use crate::symbol::Symbol;

/// Bit widths of the primitive register classes.
///
/// The paper fixes both widths to small constants (Section 3.2 assumes
/// constant bit width; Section 3.5 computes savings "assuming 8-bit
/// registers"). The defaults here — 8-bit integers and 4-bit pointers
/// (a 16-cell memory) — land the absolute gate counts in the same regime
/// as the paper's Table 1. Appendix A's bit-width experiment sweeps these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WordConfig {
    /// Bits in a `uint` register.
    pub uint_bits: u32,
    /// Bits in a pointer register; the memory has `2^ptr_bits - 1`
    /// addressable cells (address 0 is null).
    pub ptr_bits: u32,
}

impl WordConfig {
    /// The configuration used throughout the paper-scale experiments.
    pub fn paper_default() -> Self {
        WordConfig {
            uint_bits: 8,
            ptr_bits: 4,
        }
    }

    /// A tiny configuration for simulation-based tests (few qubits).
    pub fn tiny() -> Self {
        WordConfig {
            uint_bits: 2,
            ptr_bits: 2,
        }
    }
}

impl Default for WordConfig {
    fn default() -> Self {
        WordConfig::paper_default()
    }
}

/// A Tower type (paper Figure 13):
/// `τ ::= () | uint | bool | (τ₁, τ₂) | ptr(τ)` plus named references to
/// `type` declarations, which allow the recursive types that linked data
/// structures need.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The unit type `()` (zero bits).
    Unit,
    /// Fixed-width unsigned integer.
    UInt,
    /// One-bit boolean.
    Bool,
    /// Pair of two types.
    Pair(Box<Type>, Box<Type>),
    /// Pointer to a value of the given type.
    Ptr(Box<Type>),
    /// Reference to a `type name = …` declaration.
    Named(Symbol),
}

impl Type {
    /// Convenience constructor for pair types.
    pub fn pair(a: Type, b: Type) -> Type {
        Type::Pair(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for pointer types.
    pub fn ptr(t: Type) -> Type {
        Type::Ptr(Box::new(t))
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Unit => write!(f, "()"),
            Type::UInt => write!(f, "uint"),
            Type::Bool => write!(f, "bool"),
            Type::Pair(a, b) => write!(f, "({a}, {b})"),
            Type::Ptr(t) => write!(f, "ptr<{t}>"),
            Type::Named(n) => write!(f, "{n}"),
        }
    }
}

/// Table of `type` declarations, with layout queries.
///
/// # Example
///
/// ```
/// use tower::{Symbol, Type, TypeTable, WordConfig};
///
/// let mut table = TypeTable::new(WordConfig::paper_default());
/// // type list = (uint, ptr<list>);
/// table.define(
///     Symbol::new("list"),
///     Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
/// ).unwrap();
/// let list = Type::Named(Symbol::new("list"));
/// assert_eq!(table.width(&list).unwrap(), 8 + 4);
/// ```
#[derive(Debug, Clone)]
pub struct TypeTable {
    config: WordConfig,
    defs: HashMap<Symbol, Type>,
}

/// Recursion fuel for type resolution; cyclic non-pointer recursion (which
/// would denote an infinite-width type) is reported as an error once fuel
/// runs out.
const RESOLVE_FUEL: u32 = 64;

impl TypeTable {
    /// An empty table for the given word configuration.
    pub fn new(config: WordConfig) -> Self {
        TypeTable {
            config,
            defs: HashMap::new(),
        }
    }

    /// The word configuration this table lays types out with.
    pub fn config(&self) -> WordConfig {
        self.config
    }

    /// Add a `type name = ty` declaration.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is already defined.
    pub fn define(&mut self, name: Symbol, ty: Type) -> Result<(), TowerError> {
        if self.defs.contains_key(&name) {
            return Err(TowerError::DuplicateType { name });
        }
        self.defs.insert(name, ty);
        Ok(())
    }

    /// Look up a type declaration.
    pub fn get(&self, name: &Symbol) -> Option<&Type> {
        self.defs.get(name)
    }

    /// Expand a top-level [`Type::Named`] reference (one level).
    ///
    /// # Errors
    ///
    /// Returns an error for references to undeclared type names.
    pub fn resolve_shallow<'t>(&'t self, ty: &'t Type) -> Result<&'t Type, TowerError> {
        let mut current = ty;
        for _ in 0..RESOLVE_FUEL {
            match current {
                Type::Named(name) => {
                    current = self
                        .defs
                        .get(name)
                        .ok_or_else(|| TowerError::UnknownType { name: name.clone() })?;
                }
                other => return Ok(other),
            }
        }
        Err(TowerError::CyclicType { ty: ty.to_string() })
    }

    /// Structural type equivalence, unfolding named types as needed.
    ///
    /// # Errors
    ///
    /// Propagates unknown-type errors.
    pub fn equiv(&self, a: &Type, b: &Type) -> Result<bool, TowerError> {
        self.equiv_fuel(a, b, RESOLVE_FUEL)
    }

    fn equiv_fuel(&self, a: &Type, b: &Type, fuel: u32) -> Result<bool, TowerError> {
        if fuel == 0 {
            return Err(TowerError::CyclicType { ty: a.to_string() });
        }
        match (a, b) {
            (Type::Named(x), Type::Named(y)) if x == y => Ok(true),
            (Type::Named(_), _) => self.equiv_fuel(self.resolve_shallow(a)?, b, fuel - 1),
            (_, Type::Named(_)) => self.equiv_fuel(a, self.resolve_shallow(b)?, fuel - 1),
            (Type::Unit, Type::Unit) | (Type::UInt, Type::UInt) | (Type::Bool, Type::Bool) => {
                Ok(true)
            }
            (Type::Pair(a1, a2), Type::Pair(b1, b2)) => {
                Ok(self.equiv_fuel(a1, b1, fuel - 1)? && self.equiv_fuel(a2, b2, fuel - 1)?)
            }
            // Pointers compare by pointee name/structure without unfolding
            // through the pointer, so recursive types terminate.
            (Type::Ptr(p), Type::Ptr(q)) => self.ptr_equiv(p, q, fuel - 1),
            _ => Ok(false),
        }
    }

    fn ptr_equiv(&self, p: &Type, q: &Type, fuel: u32) -> Result<bool, TowerError> {
        if fuel == 0 {
            return Err(TowerError::CyclicType { ty: p.to_string() });
        }
        match (p, q) {
            (Type::Named(x), Type::Named(y)) => Ok(x == y),
            (Type::Named(_), _) => self.ptr_equiv(self.resolve_shallow(p)?, q, fuel - 1),
            (_, Type::Named(_)) => self.ptr_equiv(p, self.resolve_shallow(q)?, fuel - 1),
            _ => self.equiv_fuel(p, q, fuel),
        }
    }

    /// Bit width of a type under this table's [`WordConfig`].
    ///
    /// # Errors
    ///
    /// Returns an error for undeclared names or for types whose width is
    /// infinite (recursion not guarded by a pointer).
    pub fn width(&self, ty: &Type) -> Result<u32, TowerError> {
        self.width_fuel(ty, RESOLVE_FUEL)
    }

    fn width_fuel(&self, ty: &Type, fuel: u32) -> Result<u32, TowerError> {
        if fuel == 0 {
            return Err(TowerError::CyclicType { ty: ty.to_string() });
        }
        match ty {
            Type::Unit => Ok(0),
            Type::UInt => Ok(self.config.uint_bits),
            Type::Bool => Ok(1),
            Type::Pair(a, b) => Ok(self.width_fuel(a, fuel - 1)? + self.width_fuel(b, fuel - 1)?),
            Type::Ptr(_) => Ok(self.config.ptr_bits),
            Type::Named(_) => self.width_fuel(self.resolve_shallow(ty)?, fuel - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_table() -> TypeTable {
        let mut table = TypeTable::new(WordConfig::paper_default());
        table
            .define(
                Symbol::new("list"),
                Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list")))),
            )
            .unwrap();
        table
    }

    #[test]
    fn widths_of_primitives() {
        let table = TypeTable::new(WordConfig::paper_default());
        assert_eq!(table.width(&Type::Unit).unwrap(), 0);
        assert_eq!(table.width(&Type::UInt).unwrap(), 8);
        assert_eq!(table.width(&Type::Bool).unwrap(), 1);
        assert_eq!(table.width(&Type::ptr(Type::UInt)).unwrap(), 4);
    }

    #[test]
    fn recursive_type_width_terminates() {
        let table = list_table();
        let list = Type::Named(Symbol::new("list"));
        assert_eq!(table.width(&list).unwrap(), 12);
    }

    #[test]
    fn named_type_equiv_unfolds() {
        let table = list_table();
        let list = Type::Named(Symbol::new("list"));
        let unfolded = Type::pair(Type::UInt, Type::ptr(list.clone()));
        assert!(table.equiv(&list, &unfolded).unwrap());
        assert!(!table.equiv(&list, &Type::UInt).unwrap());
    }

    #[test]
    fn recursive_equiv_terminates() {
        let table = list_table();
        let list = Type::Named(Symbol::new("list"));
        assert!(table.equiv(&list, &list).unwrap());
        assert!(table
            .equiv(&Type::ptr(list.clone()), &Type::ptr(list))
            .unwrap());
    }

    #[test]
    fn unknown_type_is_error() {
        let table = TypeTable::new(WordConfig::paper_default());
        let bogus = Type::Named(Symbol::new("ghost"));
        assert!(matches!(
            table.width(&bogus),
            Err(TowerError::UnknownType { .. })
        ));
    }

    #[test]
    fn unguarded_recursion_is_error() {
        let mut table = TypeTable::new(WordConfig::paper_default());
        table
            .define(
                Symbol::new("inf"),
                Type::pair(Type::UInt, Type::Named(Symbol::new("inf"))),
            )
            .unwrap();
        assert!(matches!(
            table.width(&Type::Named(Symbol::new("inf"))),
            Err(TowerError::CyclicType { .. })
        ));
    }

    #[test]
    fn duplicate_definition_is_error() {
        let mut table = TypeTable::new(WordConfig::paper_default());
        table.define(Symbol::new("t"), Type::UInt).unwrap();
        assert!(matches!(
            table.define(Symbol::new("t"), Type::Bool),
            Err(TowerError::DuplicateType { .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let ty = Type::pair(Type::UInt, Type::ptr(Type::Named(Symbol::new("list"))));
        assert_eq!(ty.to_string(), "(uint, ptr<list>)");
    }
}
