//! Error type shared by the Tower front end.

use std::error::Error;
use std::fmt;

use crate::symbol::Symbol;

/// A half-open byte range `start..end` into the source text.
///
/// Lex and parse errors carry the exact span of the offending token;
/// [`TowerError::locate`] recovers best-effort spans for later-phase
/// errors that mention a source identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first byte of the spanned text.
    pub start: usize,
    /// Byte offset one past the last byte of the spanned text.
    pub end: usize,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The 1-based `(line, column)` of the span's start within `source`.
    ///
    /// Columns count characters, not bytes, matching the positions the
    /// lexer reports.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let upto = &source[..self.start.min(source.len())];
        let line = upto.matches('\n').count() + 1;
        let col = upto.chars().rev().take_while(|&c| c != '\n').count() + 1;
        (line, col)
    }
}

/// The span of the first occurrence of `name` as an identifier token in
/// `source`, skipping matches inside comments, keywords, and longer
/// identifiers. `occurrence` selects which match (0-based), so duplicate
/// declarations can point at the second appearance. Falls back to the
/// first occurrence when `occurrence` is out of range, and to `None` when
/// the name never appears (or the source does not lex).
///
/// This is the recovery path behind [`TowerError::locate`]; downstream
/// error types that mention source identifiers (the Spire backend's
/// errors) reuse it for the same best-effort spans.
pub fn locate_ident(source: &str, name: &str, occurrence: usize) -> Option<Span> {
    let tokens = crate::lexer::lex(source).ok()?;
    tokens
        .iter()
        .filter(|t| matches!(&t.token, crate::lexer::Token::Ident(s) if s == name))
        .nth(occurrence)
        .or_else(|| {
            tokens
                .iter()
                .find(|t| matches!(&t.token, crate::lexer::Token::Ident(s) if s == name))
        })
        .map(|t| t.span)
}

/// Errors produced while lexing, parsing, type checking, inlining, or
/// lowering a Tower program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TowerError {
    /// A lexical error with source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Byte span of the offending text.
        span: Span,
        /// Description.
        message: String,
    },
    /// A syntax error with source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Byte span of the offending token.
        span: Span,
        /// Description.
        message: String,
    },
    /// A `type` name was declared twice.
    DuplicateType {
        /// The duplicated name.
        name: Symbol,
    },
    /// A `fun` name was declared twice.
    DuplicateFun {
        /// The duplicated name.
        name: Symbol,
    },
    /// Reference to an undeclared type name.
    UnknownType {
        /// The missing name.
        name: Symbol,
    },
    /// A type whose layout does not terminate (recursion not guarded by a
    /// pointer).
    CyclicType {
        /// Rendering of the offending type.
        ty: String,
    },
    /// Reference to an undeclared function.
    UnknownFun {
        /// The missing name.
        name: Symbol,
    },
    /// Reference to an unbound variable.
    UnboundVar {
        /// The missing variable.
        var: Symbol,
    },
    /// A statement was ill-typed.
    TypeMismatch {
        /// What was being checked.
        context: String,
        /// Expected type rendering.
        expected: String,
        /// Found type rendering.
        found: String,
    },
    /// A variable was re-declared at a different type than its original
    /// declaration (re-declaration is only permitted at the same type so
    /// that it can share the original's register).
    RedeclaredAtDifferentType {
        /// The variable.
        var: Symbol,
        /// Original type rendering.
        original: String,
        /// New type rendering.
        new: String,
    },
    /// The condition of a quantum `if` is modified by its body
    /// (violates rule S-If's `x ∉ mod(s)` side condition).
    IfConditionModified {
        /// The condition variable.
        var: Symbol,
    },
    /// The body of a quantum `if` un-declares a variable from the outer
    /// scope (violates S-If's `dom Γ ⊆ dom Γ'` side condition).
    IfUndeclaresOuter {
        /// The variable removed by the body.
        var: Symbol,
    },
    /// A function call used the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        fun: Symbol,
        /// Declared parameter count.
        expected: usize,
        /// Call-site argument count.
        found: usize,
    },
    /// A recursion-depth expression used a variable that is not the
    /// enclosing function's depth parameter.
    BadDepthExpr {
        /// Description.
        message: String,
    },
    /// Function inlining exceeded its expansion budget (likely unbounded
    /// recursion without a decreasing depth annotation).
    InlineBudgetExceeded {
        /// The function being expanded when the budget ran out.
        fun: Symbol,
    },
    /// A construct that must be removed by an earlier pass survived to a
    /// later one (for example, a call expression after inlining).
    UnloweredConstruct {
        /// Description of the construct.
        construct: String,
    },
}

impl TowerError {
    /// Stable machine-readable error code.
    ///
    /// Codes are part of the serving API surface (`spire-serve` maps
    /// every failure to a structured JSON body carrying this code), so
    /// they are append-only: a variant's code never changes once
    /// published, and new variants add new codes.
    pub fn code(&self) -> &'static str {
        match self {
            TowerError::Lex { .. } => "tower/lex",
            TowerError::Parse { .. } => "tower/parse",
            TowerError::DuplicateType { .. } => "tower/duplicate-type",
            TowerError::DuplicateFun { .. } => "tower/duplicate-fun",
            TowerError::UnknownType { .. } => "tower/unknown-type",
            TowerError::CyclicType { .. } => "tower/cyclic-type",
            TowerError::UnknownFun { .. } => "tower/unknown-fun",
            TowerError::UnboundVar { .. } => "tower/unbound-var",
            TowerError::TypeMismatch { .. } => "tower/type-mismatch",
            TowerError::RedeclaredAtDifferentType { .. } => "tower/redeclared-at-different-type",
            TowerError::IfConditionModified { .. } => "tower/if-condition-modified",
            TowerError::IfUndeclaresOuter { .. } => "tower/if-undeclares-outer",
            TowerError::ArityMismatch { .. } => "tower/arity-mismatch",
            TowerError::BadDepthExpr { .. } => "tower/bad-depth-expr",
            TowerError::InlineBudgetExceeded { .. } => "tower/inline-budget-exceeded",
            TowerError::UnloweredConstruct { .. } => "tower/unlowered-construct",
        }
    }

    /// The byte span this error carries intrinsically, if any.
    ///
    /// Only lex and parse errors know their exact source position; for
    /// later phases use [`TowerError::locate`], which recovers a span
    /// from the source text.
    pub fn span(&self) -> Option<Span> {
        match self {
            TowerError::Lex { span, .. } | TowerError::Parse { span, .. } => Some(*span),
            _ => None,
        }
    }

    /// Best-effort byte span of this error within `source`.
    ///
    /// Lex and parse errors return their stored span. Errors that mention
    /// a source-level name (unbound variables, unknown or duplicate
    /// declarations, arity mismatches, …) are located at that name's
    /// identifier token — the *second* occurrence for duplicate
    /// declarations, since the first one is legitimate. Errors about
    /// compiler-synthesized constructs have no source span.
    pub fn locate(&self, source: &str) -> Option<Span> {
        let ident = |name: &Symbol, occurrence| locate_ident(source, name.as_str(), occurrence);
        match self {
            TowerError::Lex { span, .. } | TowerError::Parse { span, .. } => Some(*span),
            TowerError::DuplicateType { name } | TowerError::DuplicateFun { name } => {
                ident(name, 1)
            }
            TowerError::UnknownType { name } | TowerError::UnknownFun { name } => ident(name, 0),
            TowerError::UnboundVar { var }
            | TowerError::RedeclaredAtDifferentType { var, .. }
            | TowerError::IfConditionModified { var }
            | TowerError::IfUndeclaresOuter { var } => ident(var, 0),
            TowerError::ArityMismatch { fun, .. } | TowerError::InlineBudgetExceeded { fun } => {
                ident(fun, 0)
            }
            TowerError::CyclicType { .. }
            | TowerError::TypeMismatch { .. }
            | TowerError::BadDepthExpr { .. }
            | TowerError::UnloweredConstruct { .. } => None,
        }
    }
}

impl fmt::Display for TowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TowerError::Lex {
                line, col, message, ..
            } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            TowerError::Parse {
                line, col, message, ..
            } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            TowerError::DuplicateType { name } => write!(f, "duplicate type `{name}`"),
            TowerError::DuplicateFun { name } => write!(f, "duplicate function `{name}`"),
            TowerError::UnknownType { name } => write!(f, "unknown type `{name}`"),
            TowerError::CyclicType { ty } => {
                write!(f, "type `{ty}` has no finite layout (unguarded recursion)")
            }
            TowerError::UnknownFun { name } => write!(f, "unknown function `{name}`"),
            TowerError::UnboundVar { var } => write!(f, "unbound variable `{var}`"),
            TowerError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            TowerError::RedeclaredAtDifferentType { var, original, new } => write!(
                f,
                "variable `{var}` re-declared at type {new}, originally {original}"
            ),
            TowerError::IfConditionModified { var } => {
                write!(f, "if-condition `{var}` is modified by the if-body")
            }
            TowerError::IfUndeclaresOuter { var } => {
                write!(f, "if-body un-declares outer variable `{var}`")
            }
            TowerError::ArityMismatch {
                fun,
                expected,
                found,
            } => write!(
                f,
                "call to `{fun}` with {found} arguments, expected {expected}"
            ),
            TowerError::BadDepthExpr { message } => write!(f, "bad depth expression: {message}"),
            TowerError::InlineBudgetExceeded { fun } => {
                write!(f, "inlining `{fun}` exceeded the expansion budget")
            }
            TowerError::UnloweredConstruct { construct } => {
                write!(f, "construct survived lowering: {construct}")
            }
        }
    }
}

impl Error for TowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_well_formed() {
        let samples = [
            TowerError::Lex {
                line: 1,
                col: 1,
                span: Span::default(),
                message: "m".into(),
            },
            TowerError::Parse {
                line: 1,
                col: 1,
                span: Span::default(),
                message: "m".into(),
            },
            TowerError::DuplicateType {
                name: Symbol::new("t"),
            },
            TowerError::DuplicateFun {
                name: Symbol::new("f"),
            },
            TowerError::UnknownType {
                name: Symbol::new("t"),
            },
            TowerError::CyclicType { ty: "t".into() },
            TowerError::UnknownFun {
                name: Symbol::new("f"),
            },
            TowerError::UnboundVar {
                var: Symbol::new("x"),
            },
            TowerError::TypeMismatch {
                context: "c".into(),
                expected: "a".into(),
                found: "b".into(),
            },
            TowerError::RedeclaredAtDifferentType {
                var: Symbol::new("x"),
                original: "a".into(),
                new: "b".into(),
            },
            TowerError::IfConditionModified {
                var: Symbol::new("x"),
            },
            TowerError::IfUndeclaresOuter {
                var: Symbol::new("x"),
            },
            TowerError::ArityMismatch {
                fun: Symbol::new("f"),
                expected: 1,
                found: 2,
            },
            TowerError::BadDepthExpr {
                message: "m".into(),
            },
            TowerError::InlineBudgetExceeded {
                fun: Symbol::new("f"),
            },
            TowerError::UnloweredConstruct {
                construct: "c".into(),
            },
        ];
        let mut seen = std::collections::HashSet::new();
        for e in samples {
            let code = e.code();
            assert!(
                code.starts_with("tower/"),
                "code `{code}` must be namespaced"
            );
            assert!(
                code.chars()
                    .all(|c| c.is_ascii_lowercase() || c == '/' || c == '-'),
                "code `{code}` must be kebab-case"
            );
            assert!(seen.insert(code), "code `{code}` is duplicated");
        }
        assert_eq!(seen.len(), 16, "every variant carries a distinct code");
    }

    #[test]
    fn errors_display_nonempty() {
        let errors = [
            TowerError::UnboundVar {
                var: Symbol::new("x"),
            },
            TowerError::IfConditionModified {
                var: Symbol::new("c"),
            },
            TowerError::Parse {
                line: 1,
                col: 2,
                span: Span::new(4, 5),
                message: "oops".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn line_col_counts_characters_per_line() {
        let source = "ab\ncdé f";
        // Span of `f`: é is 2 bytes, so `f` starts at byte 8.
        assert_eq!(Span::new(8, 9).line_col(source), (2, 5));
        assert_eq!(Span::new(0, 1).line_col(source), (1, 1));
        // A span past the end clamps instead of panicking.
        assert_eq!(Span::new(999, 999).line_col(source).0, 2);
    }

    #[test]
    fn locate_finds_identifier_tokens_not_substrings() {
        let source = "// xs in a comment\nlet xsxs <- 1; let xs <- 2;";
        let span = locate_ident(source, "xs", 0).unwrap();
        assert_eq!(&source[span.start..span.end], "xs");
        // Not the comment, and not inside `xsxs`.
        assert_eq!(span.line_col(source), (2, 20));
    }

    #[test]
    fn locate_points_duplicates_at_the_second_occurrence() {
        let source = "fun f() -> uint { return x; } fun f() -> uint { return y; }";
        let err = TowerError::DuplicateFun {
            name: Symbol::new("f"),
        };
        let span = err.locate(source).unwrap();
        let second = source.rfind("fun f").unwrap() + "fun ".len();
        assert_eq!(span.start, second);
    }

    #[test]
    fn locate_falls_back_to_none_for_synthesized_errors() {
        let err = TowerError::TypeMismatch {
            context: "c".into(),
            expected: "a".into(),
            found: "b".into(),
        };
        assert!(err.locate("let x <- 1;").is_none());
        assert!(err.span().is_none());
    }
}
