//! Error type shared by the Tower front end.

use std::error::Error;
use std::fmt;

use crate::symbol::Symbol;

/// Errors produced while lexing, parsing, type checking, inlining, or
/// lowering a Tower program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TowerError {
    /// A lexical error with source position.
    Lex {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        message: String,
    },
    /// A syntax error with source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Description.
        message: String,
    },
    /// A `type` name was declared twice.
    DuplicateType {
        /// The duplicated name.
        name: Symbol,
    },
    /// A `fun` name was declared twice.
    DuplicateFun {
        /// The duplicated name.
        name: Symbol,
    },
    /// Reference to an undeclared type name.
    UnknownType {
        /// The missing name.
        name: Symbol,
    },
    /// A type whose layout does not terminate (recursion not guarded by a
    /// pointer).
    CyclicType {
        /// Rendering of the offending type.
        ty: String,
    },
    /// Reference to an undeclared function.
    UnknownFun {
        /// The missing name.
        name: Symbol,
    },
    /// Reference to an unbound variable.
    UnboundVar {
        /// The missing variable.
        var: Symbol,
    },
    /// A statement was ill-typed.
    TypeMismatch {
        /// What was being checked.
        context: String,
        /// Expected type rendering.
        expected: String,
        /// Found type rendering.
        found: String,
    },
    /// A variable was re-declared at a different type than its original
    /// declaration (re-declaration is only permitted at the same type so
    /// that it can share the original's register).
    RedeclaredAtDifferentType {
        /// The variable.
        var: Symbol,
        /// Original type rendering.
        original: String,
        /// New type rendering.
        new: String,
    },
    /// The condition of a quantum `if` is modified by its body
    /// (violates rule S-If's `x ∉ mod(s)` side condition).
    IfConditionModified {
        /// The condition variable.
        var: Symbol,
    },
    /// The body of a quantum `if` un-declares a variable from the outer
    /// scope (violates S-If's `dom Γ ⊆ dom Γ'` side condition).
    IfUndeclaresOuter {
        /// The variable removed by the body.
        var: Symbol,
    },
    /// A function call used the wrong number of arguments.
    ArityMismatch {
        /// Function name.
        fun: Symbol,
        /// Declared parameter count.
        expected: usize,
        /// Call-site argument count.
        found: usize,
    },
    /// A recursion-depth expression used a variable that is not the
    /// enclosing function's depth parameter.
    BadDepthExpr {
        /// Description.
        message: String,
    },
    /// Function inlining exceeded its expansion budget (likely unbounded
    /// recursion without a decreasing depth annotation).
    InlineBudgetExceeded {
        /// The function being expanded when the budget ran out.
        fun: Symbol,
    },
    /// A construct that must be removed by an earlier pass survived to a
    /// later one (for example, a call expression after inlining).
    UnloweredConstruct {
        /// Description of the construct.
        construct: String,
    },
}

impl fmt::Display for TowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TowerError::Lex { line, col, message } => {
                write!(f, "lex error at {line}:{col}: {message}")
            }
            TowerError::Parse { line, col, message } => {
                write!(f, "parse error at {line}:{col}: {message}")
            }
            TowerError::DuplicateType { name } => write!(f, "duplicate type `{name}`"),
            TowerError::DuplicateFun { name } => write!(f, "duplicate function `{name}`"),
            TowerError::UnknownType { name } => write!(f, "unknown type `{name}`"),
            TowerError::CyclicType { ty } => {
                write!(f, "type `{ty}` has no finite layout (unguarded recursion)")
            }
            TowerError::UnknownFun { name } => write!(f, "unknown function `{name}`"),
            TowerError::UnboundVar { var } => write!(f, "unbound variable `{var}`"),
            TowerError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            TowerError::RedeclaredAtDifferentType { var, original, new } => write!(
                f,
                "variable `{var}` re-declared at type {new}, originally {original}"
            ),
            TowerError::IfConditionModified { var } => {
                write!(f, "if-condition `{var}` is modified by the if-body")
            }
            TowerError::IfUndeclaresOuter { var } => {
                write!(f, "if-body un-declares outer variable `{var}`")
            }
            TowerError::ArityMismatch {
                fun,
                expected,
                found,
            } => write!(
                f,
                "call to `{fun}` with {found} arguments, expected {expected}"
            ),
            TowerError::BadDepthExpr { message } => write!(f, "bad depth expression: {message}"),
            TowerError::InlineBudgetExceeded { fun } => {
                write!(f, "inlining `{fun}` exceeded the expansion budget")
            }
            TowerError::UnloweredConstruct { construct } => {
                write!(f, "construct survived lowering: {construct}")
            }
        }
    }
}

impl Error for TowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors = [
            TowerError::UnboundVar {
                var: Symbol::new("x"),
            },
            TowerError::IfConditionModified {
                var: Symbol::new("c"),
            },
            TowerError::Parse {
                line: 1,
                col: 2,
                message: "oops".into(),
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}
