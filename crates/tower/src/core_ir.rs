//! The core intermediate representation of Tower (paper Figure 13),
//! extended — as Spire extends it (paper Section 7) — with `with-do`
//! blocks, plus the memory-allocation statements that Tower's Boson
//! allocator provides.
//!
//! Every surface construct lowers to this IR: function calls are inlined,
//! compound expressions are flattened through temporaries, and `if-else`
//! desugars to a pair of one-armed `if`s under a negated condition. The
//! cost model, the program-level optimizations, and code generation all
//! operate here.

use std::collections::HashSet;

use crate::symbol::Symbol;
use crate::types::Type;

/// A core-IR statement (paper Figure 13 plus `with` and alloc/dealloc).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreStmt {
    /// No-op.
    Skip,
    /// Sequential composition (n-ary for convenience).
    Seq(Vec<CoreStmt>),
    /// Quantum conditional `if x { s }`: `s` executes in the classical
    /// states of the superposition where `x` is true.
    If {
        /// Boolean condition variable (must not be modified by the body).
        cond: Symbol,
        /// Conditioned statement.
        body: Box<CoreStmt>,
    },
    /// `with { s₁ } do { s₂ }` ≡ `s₁; s₂; I[s₁]` (paper Section 4,
    /// "Derived Forms"); kept primitive so conditional narrowing can see it.
    With {
        /// Setup whose effect is reversed after the body.
        setup: Box<CoreStmt>,
        /// Body.
        body: Box<CoreStmt>,
    },
    /// Assignment `x ← e`: declares `x` and XORs the value of `e` into its
    /// (zero-initialized, or re-declared) register.
    Assign {
        /// Target variable.
        var: Symbol,
        /// Source expression.
        expr: CoreExpr,
    },
    /// Un-assignment `x → e`: XORs the value of `e` out of `x`'s register
    /// (restoring zero) and un-declares `x`.
    Unassign {
        /// Target variable.
        var: Symbol,
        /// Source expression.
        expr: CoreExpr,
    },
    /// Hadamard gate on a boolean variable.
    Hadamard(Symbol),
    /// Swap the values of two variables.
    Swap(Symbol, Symbol),
    /// `*p ⇔ v`: swap `v` with the memory cell addressed by `p`
    /// (a qRAM operation; dereferencing null is a no-op).
    MemSwap {
        /// Pointer variable.
        ptr: Symbol,
        /// Value variable swapped with the cell.
        val: Symbol,
    },
    /// Pop a free cell from the allocator's free stack into `var`
    /// (declares `var : ptr<pointee>`).
    Alloc {
        /// The pointer variable to bind.
        var: Symbol,
        /// Pointee type.
        pointee: Type,
    },
    /// Push `var`'s cell back onto the free stack (the cell must already be
    /// zeroed); un-declares `var`.
    Dealloc {
        /// The pointer variable to release.
        var: Symbol,
        /// Pointee type.
        pointee: Type,
    },
}

/// A core-IR expression: operands are variables only (paper Figure 13).
#[derive(Debug, Clone, PartialEq)]
pub enum CoreExpr {
    /// A literal value.
    Value(CoreValue),
    /// Copy of another variable.
    Var(Symbol),
    /// First projection of a pair variable.
    Proj1(Symbol),
    /// Second projection of a pair variable.
    Proj2(Symbol),
    /// Boolean negation of a variable.
    Not(Symbol),
    /// `test x`: true iff `x`'s representation is nonzero.
    Test(Symbol),
    /// Binary operation on two variables.
    Bin(CoreBinOp, Symbol, Symbol),
}

/// Core binary operators (paper Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreBinOp {
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
}

/// A core-IR literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreValue {
    /// `()`.
    Unit,
    /// Unsigned integer literal.
    UInt(u64),
    /// Boolean literal.
    Bool(bool),
    /// Null pointer to the given pointee type.
    Null(Type),
    /// Pointer literal (address) to the given pointee type.
    PtrLit(Type, u64),
    /// Pair of two variables.
    Pair(Symbol, Symbol),
    /// The all-zero value of a type (`default<τ>`).
    ZeroOf(Type),
}

impl CoreValue {
    /// Whether this value has an all-zero bit representation, in which case
    /// assigning it emits no gates (paper Section 5's `c^MCX_s = 0` cases).
    pub fn is_zero(&self) -> bool {
        match self {
            CoreValue::Unit | CoreValue::Null(_) | CoreValue::ZeroOf(_) => true,
            CoreValue::UInt(n) => *n == 0,
            CoreValue::Bool(b) => !b,
            CoreValue::PtrLit(_, a) => *a == 0,
            CoreValue::Pair(_, _) => false,
        }
    }
}

impl CoreExpr {
    /// Variables read by this expression.
    pub fn reads(&self) -> Vec<Symbol> {
        match self {
            CoreExpr::Value(CoreValue::Pair(a, b)) => vec![a.clone(), b.clone()],
            CoreExpr::Value(_) => Vec::new(),
            CoreExpr::Var(x)
            | CoreExpr::Proj1(x)
            | CoreExpr::Proj2(x)
            | CoreExpr::Not(x)
            | CoreExpr::Test(x) => vec![x.clone()],
            CoreExpr::Bin(_, a, b) => vec![a.clone(), b.clone()],
        }
    }
}

impl CoreStmt {
    /// Build a sequence, flattening nested sequences and dropping skips.
    pub fn seq(stmts: Vec<CoreStmt>) -> CoreStmt {
        let mut flat = Vec::new();
        fn push(flat: &mut Vec<CoreStmt>, s: CoreStmt) {
            match s {
                CoreStmt::Skip => {}
                CoreStmt::Seq(ss) => {
                    for s in ss {
                        push(flat, s);
                    }
                }
                other => flat.push(other),
            }
        }
        for s in stmts {
            push(&mut flat, s);
        }
        match flat.len() {
            0 => CoreStmt::Skip,
            1 => flat.into_iter().next().expect("one element"),
            _ => CoreStmt::Seq(flat),
        }
    }

    /// The set of variables the statement may modify — the `mod(s)` function
    /// of paper Figure 20, used by rule S-If's side condition.
    pub fn mod_set(&self) -> HashSet<Symbol> {
        let mut set = HashSet::new();
        self.collect_mods(&mut set);
        set
    }

    fn collect_mods(&self, set: &mut HashSet<Symbol>) {
        match self {
            CoreStmt::Skip => {}
            CoreStmt::Seq(ss) => {
                for s in ss {
                    s.collect_mods(set);
                }
            }
            CoreStmt::If { body, .. } => body.collect_mods(set),
            CoreStmt::With { setup, body } => {
                setup.collect_mods(set);
                body.collect_mods(set);
            }
            CoreStmt::Assign { var, .. }
            | CoreStmt::Unassign { var, .. }
            | CoreStmt::Hadamard(var)
            | CoreStmt::Alloc { var, .. }
            | CoreStmt::Dealloc { var, .. } => {
                set.insert(var.clone());
            }
            CoreStmt::Swap(a, b) => {
                set.insert(a.clone());
                set.insert(b.clone());
            }
            // The pointer is read, not written; the cell and `val` change.
            CoreStmt::MemSwap { val, .. } => {
                set.insert(val.clone());
            }
        }
    }

    /// The reversal operator `I[s]` (paper Section 4):
    /// `I[s₁;s₂] = I[s₂];I[s₁]`, `I[x←e] = x→e` and vice versa,
    /// `I[if x {s}] = if x {I[s]}`, `I[with{s₁}do{s₂}] = with{s₁}do{I[s₂]}`,
    /// and every other statement is its own reverse.
    pub fn reversed(&self) -> CoreStmt {
        match self {
            CoreStmt::Skip => CoreStmt::Skip,
            CoreStmt::Seq(ss) => CoreStmt::Seq(ss.iter().rev().map(CoreStmt::reversed).collect()),
            CoreStmt::If { cond, body } => CoreStmt::If {
                cond: cond.clone(),
                body: Box::new(body.reversed()),
            },
            CoreStmt::With { setup, body } => CoreStmt::With {
                setup: setup.clone(),
                body: Box::new(body.reversed()),
            },
            CoreStmt::Assign { var, expr } => CoreStmt::Unassign {
                var: var.clone(),
                expr: expr.clone(),
            },
            CoreStmt::Unassign { var, expr } => CoreStmt::Assign {
                var: var.clone(),
                expr: expr.clone(),
            },
            CoreStmt::Alloc { var, pointee } => CoreStmt::Dealloc {
                var: var.clone(),
                pointee: pointee.clone(),
            },
            CoreStmt::Dealloc { var, pointee } => CoreStmt::Alloc {
                var: var.clone(),
                pointee: pointee.clone(),
            },
            same @ (CoreStmt::Hadamard(_) | CoreStmt::Swap(_, _) | CoreStmt::MemSwap { .. }) => {
                same.clone()
            }
        }
    }

    /// Expand every `with { s₁ } do { s₂ }` into `s₁; s₂; I[s₁]`
    /// (the "straightforward strategy" the paper compiles with).
    pub fn expand_with(&self) -> CoreStmt {
        match self {
            CoreStmt::Skip => CoreStmt::Skip,
            CoreStmt::Seq(ss) => CoreStmt::seq(ss.iter().map(CoreStmt::expand_with).collect()),
            CoreStmt::If { cond, body } => CoreStmt::If {
                cond: cond.clone(),
                body: Box::new(body.expand_with()),
            },
            CoreStmt::With { setup, body } => {
                let setup = setup.expand_with();
                let body = body.expand_with();
                let reversed = setup.reversed();
                CoreStmt::seq(vec![setup, body, reversed])
            }
            other => other.clone(),
        }
    }

    /// Number of primitive statements (a rough program-size measure).
    pub fn size(&self) -> usize {
        match self {
            CoreStmt::Skip => 0,
            CoreStmt::Seq(ss) => ss.iter().map(CoreStmt::size).sum(),
            CoreStmt::If { body, .. } => 1 + body.size(),
            CoreStmt::With { setup, body } => 1 + setup.size() + body.size(),
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(var: &str, n: u64) -> CoreStmt {
        CoreStmt::Assign {
            var: Symbol::new(var),
            expr: CoreExpr::Value(CoreValue::UInt(n)),
        }
    }

    #[test]
    fn seq_flattens_and_drops_skip() {
        let s = CoreStmt::seq(vec![
            CoreStmt::Skip,
            CoreStmt::Seq(vec![assign("a", 1), assign("b", 2)]),
            CoreStmt::Skip,
        ]);
        let CoreStmt::Seq(ss) = &s else {
            panic!("expected Seq, got {s:?}")
        };
        assert_eq!(ss.len(), 2);
        assert_eq!(CoreStmt::seq(vec![]), CoreStmt::Skip);
        assert_eq!(CoreStmt::seq(vec![assign("a", 1)]), assign("a", 1));
    }

    #[test]
    fn double_reversal_is_identity() {
        let s = CoreStmt::seq(vec![
            assign("a", 1),
            CoreStmt::If {
                cond: Symbol::new("c"),
                body: Box::new(CoreStmt::Swap(Symbol::new("a"), Symbol::new("b"))),
            },
            CoreStmt::With {
                setup: Box::new(assign("t", 3)),
                body: Box::new(CoreStmt::Hadamard(Symbol::new("q"))),
            },
        ]);
        assert_eq!(s.reversed().reversed(), s);
    }

    #[test]
    fn reversal_swaps_assign_and_unassign() {
        let s = assign("a", 1);
        assert!(matches!(s.reversed(), CoreStmt::Unassign { .. }));
        assert!(matches!(s.reversed().reversed(), CoreStmt::Assign { .. }));
    }

    #[test]
    fn reversal_swaps_alloc_and_dealloc() {
        let s = CoreStmt::Alloc {
            var: Symbol::new("p"),
            pointee: Type::UInt,
        };
        assert!(matches!(s.reversed(), CoreStmt::Dealloc { .. }));
    }

    #[test]
    fn with_expansion_matches_definition() {
        let setup = assign("t", 1);
        let body = assign("out", 2);
        let with = CoreStmt::With {
            setup: Box::new(setup.clone()),
            body: Box::new(body.clone()),
        };
        assert_eq!(
            with.expand_with(),
            CoreStmt::seq(vec![setup.clone(), body, setup.reversed()])
        );
    }

    #[test]
    fn mod_set_matches_figure_20() {
        let s = CoreStmt::seq(vec![
            CoreStmt::Swap(Symbol::new("a"), Symbol::new("b")),
            CoreStmt::MemSwap {
                ptr: Symbol::new("p"),
                val: Symbol::new("v"),
            },
            CoreStmt::If {
                cond: Symbol::new("c"),
                body: Box::new(assign("x", 1)),
            },
        ]);
        let mods = s.mod_set();
        for name in ["a", "b", "v", "x"] {
            assert!(
                mods.contains(&Symbol::new(name)),
                "{name} should be modified"
            );
        }
        // The pointer of a memswap and the if-condition are not modified.
        assert!(!mods.contains(&Symbol::new("p")));
        assert!(!mods.contains(&Symbol::new("c")));
    }

    #[test]
    fn zero_values_are_recognized() {
        assert!(CoreValue::UInt(0).is_zero());
        assert!(CoreValue::Null(Type::UInt).is_zero());
        assert!(CoreValue::ZeroOf(Type::Bool).is_zero());
        assert!(!CoreValue::UInt(3).is_zero());
        assert!(!CoreValue::Bool(true).is_zero());
    }

    #[test]
    fn size_counts_primitives() {
        let s = CoreStmt::seq(vec![
            assign("a", 1),
            CoreStmt::If {
                cond: Symbol::new("c"),
                body: Box::new(assign("b", 2)),
            },
        ]);
        assert_eq!(s.size(), 3);
    }
}
