//! Surface abstract syntax of the Tower language, as written by the
//! programmer (paper Figure 1): functions with recursion-depth annotations,
//! `with-do` blocks, `if-else`, compound expressions, and calls — all of
//! which lower to the core IR of Figure 13.

use crate::symbol::Symbol;
use crate::types::Type;

/// A whole source program: type declarations plus function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// `type name = τ;` declarations.
    pub types: Vec<TypeDef>,
    /// `fun` definitions.
    pub funs: Vec<FunDef>,
}

impl Program {
    /// Look up a function by name.
    pub fn fun(&self, name: &Symbol) -> Option<&FunDef> {
        self.funs.iter().find(|f| &f.name == name)
    }
}

/// A `type name = τ;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeDef {
    /// Declared name.
    pub name: Symbol,
    /// Definition.
    pub ty: Type,
}

/// A function definition.
///
/// `fun name[d](x₁: τ₁, …) -> τ { body…; return r; }`. The depth parameter
/// `[d]` makes the definition a compile-time family: calls supply a depth,
/// and the compiler unrolls recursion to that depth (paper Section 3.1).
/// Calls at depth ≤ 0 evaluate to the zero value of the return type.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name.
    pub name: Symbol,
    /// Optional recursion-depth parameter.
    pub depth_param: Option<Symbol>,
    /// Parameters with their types.
    pub params: Vec<(Symbol, Type)>,
    /// Return type (used to zero-initialize depth-0 call results).
    pub ret_ty: Type,
    /// Body statements, ending just before `return`.
    pub body: Vec<Stmt>,
    /// The returned variable.
    pub ret_var: Symbol,
}

/// A surface statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let x <- e;` — initialize `x` to zero and XOR `e` into it.
    Let {
        /// Target variable.
        var: Symbol,
        /// Right-hand side.
        expr: Expr,
    },
    /// `let x -> e;` — un-assignment: XOR `e` out of `x` and un-declare it.
    UnLet {
        /// Target variable.
        var: Symbol,
        /// Right-hand side.
        expr: Expr,
    },
    /// `with { setup } do { body }` — run setup, body, then setup reversed.
    With {
        /// Statements whose effect is undone after the body.
        setup: Vec<Stmt>,
        /// The block executed between setup and its reversal.
        body: Vec<Stmt>,
    },
    /// `if e { then } else { els }` — quantum conditional.
    If {
        /// Condition (may be compound; lowering hoists it).
        cond: Expr,
        /// Statements executed in states where the condition holds.
        then_block: Vec<Stmt>,
        /// Optional else-branch.
        else_block: Option<Vec<Stmt>>,
    },
    /// `x <-> y;` — swap two variables.
    Swap(Symbol, Symbol),
    /// `*p <-> v;` — swap `v` with the memory cell `p` points to.
    MemSwap(Symbol, Symbol),
    /// `had x;` — Hadamard on a boolean variable.
    Hadamard(Symbol),
    /// `alloc x : τ;` — pop a fresh cell for a `ptr<τ>` off the free stack.
    Alloc {
        /// The pointer variable to bind.
        var: Symbol,
        /// Pointee type.
        pointee: Type,
    },
    /// `dealloc x : τ;` — return `x`'s (zeroed) cell to the free stack.
    Dealloc {
        /// The pointer variable to release.
        var: Symbol,
        /// Pointee type.
        pointee: Type,
    },
    /// `return x;` — only valid as the last statement of a function body.
    Return(Symbol),
}

/// Binary operators of the surface language.
///
/// `==` and `!=` are surface-only sugar (the core has no comparison
/// operators); lowering rewrites them with subtraction and `test`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Equality (sugar).
    Eq,
    /// Disequality (sugar).
    Ne,
}

/// A surface expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Var(Symbol),
    /// Unsigned integer literal.
    UIntLit(u64),
    /// Boolean literal.
    BoolLit(bool),
    /// The unit value `()`.
    UnitLit,
    /// The null pointer.
    Null,
    /// `default<τ>` — the all-zero value of type τ.
    Default(Type),
    /// Pair construction.
    Pair(Box<Expr>, Box<Expr>),
    /// Projection `e.1` or `e.2`.
    Proj(Box<Expr>, u8),
    /// Boolean negation.
    Not(Box<Expr>),
    /// `test e` — true iff `e` has a nonzero representation.
    Test(Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Function call `f[d](args…)`.
    Call {
        /// Callee.
        fun: Symbol,
        /// Recursion-depth argument, if the callee takes one.
        depth: Option<DepthExpr>,
        /// Arguments (restricted to variables/literals by the inliner).
        args: Vec<Expr>,
    },
}

/// A compile-time recursion-depth expression: `n`, `n - k`, or a literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DepthExpr {
    /// A literal depth.
    Lit(i64),
    /// The enclosing function's depth parameter.
    Var(Symbol),
    /// The depth parameter minus a constant.
    Sub(Symbol, i64),
}

impl DepthExpr {
    /// Evaluate under a binding of the enclosing depth parameter.
    pub fn eval(&self, param: Option<(&Symbol, i64)>) -> Result<i64, crate::TowerError> {
        let lookup = |s: &Symbol| match param {
            Some((p, v)) if p == s => Ok(v),
            _ => Err(crate::TowerError::BadDepthExpr {
                message: format!("`{s}` is not the enclosing depth parameter"),
            }),
        };
        match self {
            DepthExpr::Lit(v) => Ok(*v),
            DepthExpr::Var(s) => lookup(s),
            DepthExpr::Sub(s, k) => Ok(lookup(s)? - k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_expr_evaluates() {
        let n = Symbol::new("n");
        assert_eq!(DepthExpr::Lit(3).eval(None).unwrap(), 3);
        assert_eq!(DepthExpr::Var(n.clone()).eval(Some((&n, 7))).unwrap(), 7);
        assert_eq!(DepthExpr::Sub(n.clone(), 2).eval(Some((&n, 7))).unwrap(), 5);
    }

    #[test]
    fn depth_expr_rejects_foreign_variable() {
        let n = Symbol::new("n");
        let m = Symbol::new("m");
        assert!(DepthExpr::Var(m).eval(Some((&n, 7))).is_err());
    }
}
