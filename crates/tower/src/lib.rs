//! The Tower quantum programming language, as studied in
//! *The T-Complexity Costs of Error Correction for Control Flow in Quantum
//! Computation* (Yuan & Carbin, PLDI 2024).
//!
//! This crate is the language substrate of the Spire reproduction. It
//! provides:
//!
//! * the surface language of paper Figure 1 — [`parse`] produces an
//!   [`ast::Program`] of functions with recursion-depth annotations,
//!   `with-do` blocks, quantum `if`, and compound expressions;
//! * compile-time function [`inline`]-ing (Tower has no call stack);
//! * [`lower_block`], which removes derived forms and produces the core IR
//!   of paper Figure 13 ([`CoreStmt`]), extended with `with-do` blocks the
//!   way Spire extends it;
//! * the type system of paper Appendix B.1 ([`typecheck`]), including the
//!   re-declaration rule and `H(x)` typing.
//!
//! The compiler backend (cost model, optimizations, register allocation,
//! code generation) lives in the `spire` crate.
//!
//! # Example
//!
//! ```
//! use tower::{inline, lower_block, parse, typecheck, NameGen, Symbol, Type, TypeTable, WordConfig};
//!
//! let src = r#"
//!     fun add_twice[n](acc: uint, step: uint) -> uint {
//!         with { let r <- acc + step; } do {
//!             let out <- add_twice[n-1](r, step);
//!         }
//!         return out;
//!     }
//! "#;
//! let program = parse(src)?;
//! let mut names = NameGen::new();
//! let body = inline(&program, &Symbol::new("add_twice"), 4, &mut names)?;
//! let core = lower_block(&body, &mut names)?;
//!
//! let table = TypeTable::new(WordConfig::paper_default());
//! let inputs = [
//!     (Symbol::new("acc"), Type::UInt),
//!     (Symbol::new("step"), Type::UInt),
//! ];
//! let info = typecheck(&core, &inputs, &table)?;
//! assert!(info.type_of(&Symbol::new("out")).is_some());
//! # Ok::<(), tower::TowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
mod core_ir;
mod error;
mod inline;
pub mod lexer;
mod lower;
pub mod parser;
mod pretty;
mod symbol;
mod typecheck;
mod types;

pub use core_ir::{CoreBinOp, CoreExpr, CoreStmt, CoreValue};
pub use error::{locate_ident, Span, TowerError};
pub use inline::inline;
pub use lower::lower_block;
pub use parser::parse;
pub use pretty::pretty;
pub use symbol::{NameGen, Symbol};
pub use typecheck::{typecheck, typecheck_with, Context, Strictness, TypeInfo};
pub use types::{Type, TypeTable, WordConfig};

use ast::Program;

/// Front-end convenience: parse, build the type table, inline `entry` at
/// `depth`, lower to core IR, and type check.
///
/// # Errors
///
/// Propagates errors from every stage.
///
/// # Example
///
/// ```
/// use tower::{front_end, WordConfig};
///
/// let src = r#"
///     fun inc(x: uint) -> uint {
///         let out <- x + 1;
///         return out;
///     }
/// "#;
/// let unit = front_end(src, "inc", 0, WordConfig::paper_default())?;
/// assert_eq!(unit.inputs.len(), 1);
/// # Ok::<(), tower::TowerError>(())
/// ```
pub fn front_end(
    source: &str,
    entry: &str,
    depth: i64,
    config: WordConfig,
) -> Result<CompilationUnit, TowerError> {
    let program = {
        let mut span = spire_trace::span("parse");
        let parsed = parse(source)?;
        span.attr("bytes", source.len() as u64);
        span.attr("funs", parsed.funs.len() as u64);
        parsed
    };
    front_end_program(&program, entry, depth, config)
}

/// [`front_end`] for an already-parsed program.
///
/// # Errors
///
/// Propagates errors from inlining, lowering, and type checking.
pub fn front_end_program(
    program: &Program,
    entry: &str,
    depth: i64,
    config: WordConfig,
) -> Result<CompilationUnit, TowerError> {
    let entry_sym = Symbol::new(entry);
    let fun = program
        .fun(&entry_sym)
        .ok_or_else(|| TowerError::UnknownFun {
            name: entry_sym.clone(),
        })?;

    let mut table = TypeTable::new(config);
    for def in &program.types {
        table.define(def.name.clone(), def.ty.clone())?;
    }

    let mut names = NameGen::new();
    let body = {
        let mut span = spire_trace::span("inline");
        span.attr("depth", depth.unsigned_abs());
        inline(program, &entry_sym, depth, &mut names)?
    };
    let core = {
        let mut span = spire_trace::span("lower");
        let core = lower_block(&body, &mut names)?;
        span.attr("stmts", core.size() as u64);
        core
    };

    let inputs: Vec<(Symbol, Type)> = fun.params.clone();
    // The reversal half of a with-do block turns branch assignments into
    // branch un-assignments, which rule S-If's strict `dom Γ ⊆ dom Γ'`
    // condition rejects even though they are exactly the inverses of
    // well-formed statements. The pipeline therefore checks with the
    // relaxed rule; `typecheck` itself defaults to the paper's strict one.
    let info = {
        let _span = spire_trace::span("typecheck");
        typecheck_with(&core, &inputs, &table, Strictness::Relaxed)?
    };

    Ok(CompilationUnit {
        core,
        inputs,
        ret_var: fun.ret_var.clone(),
        table,
        types: info,
        names,
    })
}

/// A type-checked core-IR program with its front-end metadata: the input
/// registers (entry parameters), the return variable, the type table, and
/// the name generator (so later passes can keep generating fresh names).
#[derive(Debug, Clone)]
pub struct CompilationUnit {
    /// The lowered, type-checked core IR.
    pub core: CoreStmt,
    /// Entry-function parameters, in declaration order.
    pub inputs: Vec<(Symbol, Type)>,
    /// The entry function's returned variable.
    pub ret_var: Symbol,
    /// Type declarations and layout rules.
    pub table: TypeTable,
    /// Per-variable types and the final typing context.
    pub types: TypeInfo,
    /// Fresh-name generator, positioned after all front-end names.
    pub names: NameGen,
}

#[cfg(test)]
mod tests {
    use super::*;

    const LENGTH_SRC: &str = r#"
        type list = (uint, ptr<list>);
        fun length[n](xs: ptr<list>, acc: uint) -> uint {
            with {
                let is_empty <- xs == null;
            } do if is_empty {
                let out <- acc;
            } else with {
                let temp <- default<list>;
                *xs <-> temp;
                let next <- temp.2;
                let r <- acc + 1;
            } do {
                let out <- length[n-1](next, r);
            }
            return out;
        }
    "#;

    #[test]
    fn length_front_end_type_checks_at_depths() {
        for depth in 1..=4 {
            let unit = front_end(LENGTH_SRC, "length", depth, WordConfig::paper_default())
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            let out_ty = unit.types.type_of(&unit.ret_var).expect("out typed");
            assert_eq!(out_ty, &Type::UInt);
        }
    }

    #[test]
    fn length_core_grows_linearly_in_depth() {
        let sizes: Vec<usize> = (1..=5)
            .map(|d| {
                front_end(LENGTH_SRC, "length", d, WordConfig::paper_default())
                    .unwrap()
                    .core
                    .size()
            })
            .collect();
        let deltas: Vec<isize> = sizes
            .windows(2)
            .map(|w| w[1] as isize - w[0] as isize)
            .collect();
        assert!(
            deltas.windows(2).all(|w| w[0] == w[1]),
            "expected constant growth, sizes {sizes:?}"
        );
    }

    #[test]
    fn unknown_entry_is_error() {
        assert!(matches!(
            front_end(LENGTH_SRC, "missing", 2, WordConfig::paper_default()),
            Err(TowerError::UnknownFun { .. })
        ));
    }
}
