//! Pretty-printing of core-IR programs back to Tower-like source.

use std::fmt::Write as _;

use crate::core_ir::{CoreBinOp, CoreExpr, CoreStmt, CoreValue};

/// Render a core statement as indented Tower-like source text.
///
/// # Example
///
/// ```
/// use tower::{pretty, CoreExpr, CoreStmt, CoreValue, Symbol};
///
/// let s = CoreStmt::If {
///     cond: Symbol::new("c"),
///     body: Box::new(CoreStmt::Assign {
///         var: Symbol::new("x"),
///         expr: CoreExpr::Value(CoreValue::Bool(true)),
///     }),
/// };
/// assert_eq!(pretty(&s), "if c {\n  let x <- true;\n}\n");
/// ```
pub fn pretty(stmt: &CoreStmt) -> String {
    let mut out = String::new();
    write_stmt(stmt, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_stmt(stmt: &CoreStmt, level: usize, out: &mut String) {
    match stmt {
        CoreStmt::Skip => {
            indent(out, level);
            out.push_str("skip;\n");
        }
        CoreStmt::Seq(ss) => {
            for s in ss {
                write_stmt(s, level, out);
            }
        }
        CoreStmt::If { cond, body } => {
            indent(out, level);
            let _ = writeln!(out, "if {cond} {{");
            write_stmt(body, level + 1, out);
            indent(out, level);
            out.push_str("}\n");
        }
        CoreStmt::With { setup, body } => {
            indent(out, level);
            out.push_str("with {\n");
            write_stmt(setup, level + 1, out);
            indent(out, level);
            out.push_str("} do {\n");
            write_stmt(body, level + 1, out);
            indent(out, level);
            out.push_str("}\n");
        }
        CoreStmt::Assign { var, expr } => {
            indent(out, level);
            let _ = writeln!(out, "let {var} <- {};", expr_str(expr));
        }
        CoreStmt::Unassign { var, expr } => {
            indent(out, level);
            let _ = writeln!(out, "let {var} -> {};", expr_str(expr));
        }
        CoreStmt::Hadamard(x) => {
            indent(out, level);
            let _ = writeln!(out, "had {x};");
        }
        CoreStmt::Swap(a, b) => {
            indent(out, level);
            let _ = writeln!(out, "{a} <-> {b};");
        }
        CoreStmt::MemSwap { ptr, val } => {
            indent(out, level);
            let _ = writeln!(out, "*{ptr} <-> {val};");
        }
        CoreStmt::Alloc { var, pointee } => {
            indent(out, level);
            let _ = writeln!(out, "alloc {var} : {pointee};");
        }
        CoreStmt::Dealloc { var, pointee } => {
            indent(out, level);
            let _ = writeln!(out, "dealloc {var} : {pointee};");
        }
    }
}

fn expr_str(expr: &CoreExpr) -> String {
    match expr {
        CoreExpr::Value(v) => value_str(v),
        CoreExpr::Var(x) => x.to_string(),
        CoreExpr::Proj1(x) => format!("{x}.1"),
        CoreExpr::Proj2(x) => format!("{x}.2"),
        CoreExpr::Not(x) => format!("not {x}"),
        CoreExpr::Test(x) => format!("test {x}"),
        CoreExpr::Bin(op, a, b) => {
            let op = match op {
                CoreBinOp::And => "&&",
                CoreBinOp::Or => "||",
                CoreBinOp::Add => "+",
                CoreBinOp::Sub => "-",
                CoreBinOp::Mul => "*",
            };
            format!("{a} {op} {b}")
        }
    }
}

fn value_str(value: &CoreValue) -> String {
    match value {
        CoreValue::Unit => "()".into(),
        CoreValue::UInt(n) => n.to_string(),
        CoreValue::Bool(b) => b.to_string(),
        CoreValue::Null(ty) => format!("default<ptr<{ty}>>"),
        CoreValue::PtrLit(ty, a) => format!("ptr<{ty}>[{a}]"),
        CoreValue::Pair(a, b) => format!("({a}, {b})"),
        CoreValue::ZeroOf(ty) => format!("default<{ty}>"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use crate::types::Type;

    #[test]
    fn prints_with_do() {
        let s = CoreStmt::With {
            setup: Box::new(CoreStmt::Assign {
                var: Symbol::new("t"),
                expr: CoreExpr::Var(Symbol::new("z")),
            }),
            body: Box::new(CoreStmt::MemSwap {
                ptr: Symbol::new("p"),
                val: Symbol::new("t"),
            }),
        };
        let text = pretty(&s);
        assert!(text.contains("with {"));
        assert!(text.contains("let t <- z;"));
        assert!(text.contains("*p <-> t;"));
    }

    #[test]
    fn prints_values() {
        assert_eq!(value_str(&CoreValue::UInt(7)), "7");
        assert_eq!(value_str(&CoreValue::ZeroOf(Type::UInt)), "default<uint>");
        assert_eq!(
            value_str(&CoreValue::Pair(Symbol::new("a"), Symbol::new("b"))),
            "(a, b)"
        );
    }
}
