//! Lowering from (inlined, call-free) surface statements to the core IR.
//!
//! Three derived forms disappear here:
//!
//! * **Compound expressions** flatten through temporaries. The temporaries
//!   are computed in a `with`-block so their uncomputation is automatic.
//! * **Equality sugar** `a == b` / `a != b` rewrites to subtraction plus
//!   `test` (pointers compare against null with `test` alone).
//! * **`if-else`** desugars to a `with`-block computing the negated
//!   condition and a pair of one-armed `if`s:
//!   `with { nc ← not c } do { if c {A}; if nc {B} }`.
//!   Keeping the negation in a `with`-block lets conditional narrowing
//!   hoist it (paper Figure 10's `not_empty` variables), while the
//!   conditional-flattening-only configuration first expands `with`s and
//!   then sees directly nested `if`s.

use crate::ast::{BinOp, Expr, Stmt};
use crate::core_ir::{CoreBinOp, CoreExpr, CoreStmt, CoreValue};
use crate::error::TowerError;
use crate::symbol::{NameGen, Symbol};

/// Lower a call-free surface block to core IR.
///
/// # Errors
///
/// Reports constructs that should have been removed earlier (calls,
/// `return`) and sugar with no lowering (untyped `null` outside a
/// comparison).
///
/// # Example
///
/// ```
/// use tower::{lower_block, parser::parse_block, NameGen};
///
/// let stmts = parse_block("let s <- x && y && z;").unwrap();
/// let mut names = NameGen::new();
/// let core = lower_block(&stmts, &mut names).unwrap();
/// // The nested conjunction computes a temporary inside a with-block.
/// assert!(matches!(core, tower::CoreStmt::With { .. }));
/// ```
pub fn lower_block(stmts: &[Stmt], names: &mut NameGen) -> Result<CoreStmt, TowerError> {
    let mut lowered = Vec::new();
    for stmt in stmts {
        lowered.push(lower_stmt(stmt, names)?);
    }
    Ok(CoreStmt::seq(lowered))
}

fn lower_stmt(stmt: &Stmt, names: &mut NameGen) -> Result<CoreStmt, TowerError> {
    match stmt {
        Stmt::Let { var, expr } => {
            let (setup, core) = flatten(expr, names)?;
            let assign = CoreStmt::Assign {
                var: var.clone(),
                expr: core,
            };
            Ok(wrap_setup(setup, assign))
        }
        Stmt::UnLet { var, expr } => {
            let (setup, core) = flatten(expr, names)?;
            let unassign = CoreStmt::Unassign {
                var: var.clone(),
                expr: core,
            };
            Ok(wrap_setup(setup, unassign))
        }
        Stmt::With { setup, body } => Ok(CoreStmt::With {
            setup: Box::new(lower_block(setup, names)?),
            body: Box::new(lower_block(body, names)?),
        }),
        Stmt::If {
            cond,
            then_block,
            else_block,
        } => lower_if(cond, then_block, else_block.as_deref(), names),
        Stmt::Swap(a, b) => Ok(CoreStmt::Swap(a.clone(), b.clone())),
        Stmt::MemSwap(p, v) => Ok(CoreStmt::MemSwap {
            ptr: p.clone(),
            val: v.clone(),
        }),
        Stmt::Hadamard(x) => Ok(CoreStmt::Hadamard(x.clone())),
        Stmt::Alloc { var, pointee } => Ok(CoreStmt::Alloc {
            var: var.clone(),
            pointee: pointee.clone(),
        }),
        Stmt::Dealloc { var, pointee } => Ok(CoreStmt::Dealloc {
            var: var.clone(),
            pointee: pointee.clone(),
        }),
        Stmt::Return(_) => Err(TowerError::UnloweredConstruct {
            construct: "return statement".into(),
        }),
    }
}

fn wrap_setup(setup: Vec<CoreStmt>, body: CoreStmt) -> CoreStmt {
    if setup.is_empty() {
        body
    } else {
        CoreStmt::With {
            setup: Box::new(CoreStmt::seq(setup)),
            body: Box::new(body),
        }
    }
}

fn lower_if(
    cond: &Expr,
    then_block: &[Stmt],
    else_block: Option<&[Stmt]>,
    names: &mut NameGen,
) -> Result<CoreStmt, TowerError> {
    let (mut setup, cond_var) = flatten_to_var(cond, names)?;
    let then_core = lower_block(then_block, names)?;
    match else_block {
        None => {
            let body = CoreStmt::If {
                cond: cond_var,
                body: Box::new(then_core),
            };
            Ok(wrap_setup(setup, body))
        }
        Some(els) => {
            let neg = names.fresh("nc");
            setup.push(CoreStmt::Assign {
                var: neg.clone(),
                expr: CoreExpr::Not(cond_var.clone()),
            });
            let else_core = lower_block(els, names)?;
            let body = CoreStmt::seq(vec![
                CoreStmt::If {
                    cond: cond_var,
                    body: Box::new(then_core),
                },
                CoreStmt::If {
                    cond: neg,
                    body: Box::new(else_core),
                },
            ]);
            // The else desugaring always needs the with-block (for `nc`).
            Ok(CoreStmt::With {
                setup: Box::new(CoreStmt::seq(setup)),
                body: Box::new(body),
            })
        }
    }
}

/// Flatten an expression to a core expression plus the temporary
/// assignments it needs (in dependency order).
fn flatten(expr: &Expr, names: &mut NameGen) -> Result<(Vec<CoreStmt>, CoreExpr), TowerError> {
    let mut setup = Vec::new();
    let core = flatten_into(expr, names, &mut setup)?;
    Ok((setup, core))
}

/// Flatten an expression all the way to a variable.
fn flatten_to_var(expr: &Expr, names: &mut NameGen) -> Result<(Vec<CoreStmt>, Symbol), TowerError> {
    let mut setup = Vec::new();
    let var = ensure_var(expr, names, &mut setup)?;
    Ok((setup, var))
}

fn flatten_into(
    expr: &Expr,
    names: &mut NameGen,
    setup: &mut Vec<CoreStmt>,
) -> Result<CoreExpr, TowerError> {
    Ok(match expr {
        Expr::Var(v) => CoreExpr::Var(v.clone()),
        Expr::UIntLit(n) => CoreExpr::Value(CoreValue::UInt(*n)),
        Expr::BoolLit(b) => CoreExpr::Value(CoreValue::Bool(*b)),
        Expr::UnitLit => CoreExpr::Value(CoreValue::Unit),
        Expr::Default(ty) => CoreExpr::Value(CoreValue::ZeroOf(ty.clone())),
        Expr::Null => {
            return Err(TowerError::UnloweredConstruct {
                construct: "`null` outside a comparison (write `default<ptr<T>>` for a typed null)"
                    .into(),
            })
        }
        Expr::Pair(a, b) => {
            let va = ensure_var(a, names, setup)?;
            let vb = ensure_var(b, names, setup)?;
            CoreExpr::Value(CoreValue::Pair(va, vb))
        }
        Expr::Proj(e, idx) => {
            let v = ensure_var(e, names, setup)?;
            if *idx == 1 {
                CoreExpr::Proj1(v)
            } else {
                CoreExpr::Proj2(v)
            }
        }
        Expr::Not(e) => CoreExpr::Not(ensure_var(e, names, setup)?),
        Expr::Test(e) => CoreExpr::Test(ensure_var(e, names, setup)?),
        Expr::Bin(BinOp::Eq, a, b) => {
            let nonzero = lower_disequality(a, b, names, setup)?;
            let t = bind_temp(CoreExpr::Test(nonzero), "eqz", names, setup);
            CoreExpr::Not(t)
        }
        Expr::Bin(BinOp::Ne, a, b) => {
            let nonzero = lower_disequality(a, b, names, setup)?;
            CoreExpr::Test(nonzero)
        }
        Expr::Bin(op, a, b) => {
            let core_op = match op {
                BinOp::And => CoreBinOp::And,
                BinOp::Or => CoreBinOp::Or,
                BinOp::Add => CoreBinOp::Add,
                BinOp::Sub => CoreBinOp::Sub,
                BinOp::Mul => CoreBinOp::Mul,
                BinOp::Eq | BinOp::Ne => unreachable!("handled above"),
            };
            let va = ensure_var(a, names, setup)?;
            let vb = ensure_var(b, names, setup)?;
            CoreExpr::Bin(core_op, va, vb)
        }
        Expr::Call { .. } => {
            return Err(TowerError::UnloweredConstruct {
                construct: "function call (run the inliner first)".into(),
            })
        }
    })
}

/// Produce the variable whose `test` decides `a == b`:
/// for pointer-null comparisons the pointer itself, otherwise `a - b`.
fn lower_disequality(
    a: &Expr,
    b: &Expr,
    names: &mut NameGen,
    setup: &mut Vec<CoreStmt>,
) -> Result<Symbol, TowerError> {
    match (a, b) {
        (Expr::Null, other) | (other, Expr::Null) => ensure_var(other, names, setup),
        _ => {
            let va = ensure_var(a, names, setup)?;
            let vb = ensure_var(b, names, setup)?;
            Ok(bind_temp(
                CoreExpr::Bin(CoreBinOp::Sub, va, vb),
                "diff",
                names,
                setup,
            ))
        }
    }
}

fn ensure_var(
    expr: &Expr,
    names: &mut NameGen,
    setup: &mut Vec<CoreStmt>,
) -> Result<Symbol, TowerError> {
    if let Expr::Var(v) = expr {
        return Ok(v.clone());
    }
    let core = flatten_into(expr, names, setup)?;
    if let CoreExpr::Var(v) = core {
        return Ok(v);
    }
    Ok(bind_temp(core, "t", names, setup))
}

fn bind_temp(
    expr: CoreExpr,
    prefix: &str,
    names: &mut NameGen,
    setup: &mut Vec<CoreStmt>,
) -> Symbol {
    let temp = names.fresh(prefix);
    setup.push(CoreStmt::Assign {
        var: temp.clone(),
        expr,
    });
    temp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_block;

    fn lower_src(src: &str) -> CoreStmt {
        let stmts = parse_block(src).unwrap();
        let mut names = NameGen::new();
        lower_block(&stmts, &mut names).unwrap()
    }

    #[test]
    fn simple_let_lowers_directly() {
        let core = lower_src("let x <- y;");
        assert!(matches!(core, CoreStmt::Assign { .. }));
    }

    #[test]
    fn conjunction_chain_uses_with_temp() {
        let core = lower_src("let s <- x && y && z;");
        let CoreStmt::With { setup, body } = core else {
            panic!("expected with, got {core:?}")
        };
        assert!(matches!(*setup, CoreStmt::Assign { .. }));
        let CoreStmt::Assign { expr, .. } = *body else {
            panic!()
        };
        assert!(matches!(expr, CoreExpr::Bin(CoreBinOp::And, _, _)));
    }

    #[test]
    fn pointer_null_comparison_uses_test() {
        let core = lower_src("let is_empty <- xs == null;");
        let CoreStmt::With { setup, body } = core else {
            panic!("expected with, got {core:?}")
        };
        // setup: eqz <- test xs; body: is_empty <- not eqz.
        let CoreStmt::Assign { expr, .. } = *setup else {
            panic!()
        };
        assert_eq!(expr, CoreExpr::Test(Symbol::new("xs")));
        let CoreStmt::Assign { expr, .. } = *body else {
            panic!()
        };
        assert!(matches!(expr, CoreExpr::Not(_)));
    }

    #[test]
    fn uint_equality_uses_sub_and_test() {
        let core = lower_src("let e <- a == b;");
        let CoreStmt::With { setup, .. } = core else {
            panic!()
        };
        let CoreStmt::Seq(setups) = *setup else {
            panic!()
        };
        assert!(matches!(
            &setups[0],
            CoreStmt::Assign {
                expr: CoreExpr::Bin(CoreBinOp::Sub, _, _),
                ..
            }
        ));
        assert!(matches!(
            &setups[1],
            CoreStmt::Assign {
                expr: CoreExpr::Test(_),
                ..
            }
        ));
    }

    #[test]
    fn if_with_variable_condition_is_bare() {
        let core = lower_src("if c { let x <- true; }");
        assert!(matches!(core, CoreStmt::If { .. }));
    }

    #[test]
    fn if_else_desugars_to_negation_pair() {
        let core = lower_src("if c { let x <- true; } else { let x <- false; }");
        let CoreStmt::With { setup, body } = core else {
            panic!("expected with, got {core:?}")
        };
        let CoreStmt::Assign { expr, .. } = *setup else {
            panic!()
        };
        assert_eq!(expr, CoreExpr::Not(Symbol::new("c")));
        let CoreStmt::Seq(arms) = *body else { panic!() };
        assert_eq!(arms.len(), 2);
        assert!(matches!(arms[0], CoreStmt::If { .. }));
        assert!(matches!(arms[1], CoreStmt::If { .. }));
    }

    #[test]
    fn compound_condition_is_hoisted() {
        let core = lower_src("if x && y { let a <- true; }");
        let CoreStmt::With { setup, body } = core else {
            panic!()
        };
        assert!(matches!(
            *setup,
            CoreStmt::Assign {
                expr: CoreExpr::Bin(CoreBinOp::And, _, _),
                ..
            }
        ));
        assert!(matches!(*body, CoreStmt::If { .. }));
    }

    #[test]
    fn unlet_with_projection() {
        let core = lower_src("let next -> temp.2;");
        assert!(matches!(
            core,
            CoreStmt::Unassign {
                expr: CoreExpr::Proj2(_),
                ..
            }
        ));
    }

    #[test]
    fn bare_null_is_rejected() {
        let stmts = parse_block("let p <- null;").unwrap();
        let mut names = NameGen::new();
        assert!(lower_block(&stmts, &mut names).is_err());
    }

    #[test]
    fn nested_with_do_lowers_structurally() {
        let core = lower_src("with { let t <- z; } do { if z { let a <- not t; } }");
        let CoreStmt::With { setup, body } = core else {
            panic!()
        };
        assert!(matches!(*setup, CoreStmt::Assign { .. }));
        assert!(matches!(*body, CoreStmt::If { .. }));
    }
}
