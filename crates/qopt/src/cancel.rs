//! Gate-cancellation passes.
//!
//! The algorithm is the paper's greedy stack walk: each gate looks
//! backwards over gates it commutes with, and if it meets its own adjoint
//! the pair is removed. The walk distance is the pass's *window*:
//! peephole optimizers use a small window, Toffoli-aware optimizers a
//! large one, and the long-range resynthesis pass an unbounded one (the
//! paper's Section 8.5 explains why window size decides whether
//! conditional-narrowing structure is recoverable).
//!
//! The implementation is a tombstone-marked index list over the packed
//! input circuit — no gate is ever cloned, moved, or `Vec::remove`d:
//!
//! * each gate is a slot index; a cancelled pair is two tombstones;
//! * bounded windows walk the live slots through a doubly-linked list
//!   (splice-out is O(1)), testing commutation with the footprint-mask
//!   kernel ([`commutes_views`]) and adjointness with the non-allocating
//!   [`GateView::is_adjoint_of`] predicate;
//! * the unbounded window replaces the walk with *per-qubit last-writer
//!   tracking*: every qubit keeps the (ascending) slot indices of live
//!   gates touching it, so the walk jumps straight from one gate
//!   overlapping the candidate's footprint to the next, skipping the —
//!   provably commuting — disjoint gates in between in O(1) instead of
//!   O(gates skipped). This is what collapses the quadratic constant of
//!   the `-toCliffordT`-style pipelines;
//! * [`cancel_fixpoint`] re-scans from a dirty index instead of
//!   re-running whole passes: after a scan that cancelled something, the
//!   earliest tombstoned slot bounds the region whose processing could
//!   possibly change, and everything before it is provably stable, so
//!   the next scan resumes there. The fixpoint is gate-for-gate
//!   identical to iterating full passes (the differential tests pin
//!   this against the pre-refactor reference implementation).

use qcirc::Circuit;

use crate::commute::commutes_views;

const NIL: u32 = u32::MAX;

/// Cancel adjoint gate pairs, commuting candidates across at most `window`
/// intervening gates (`usize::MAX` for unbounded).
pub fn cancel_with_window(circuit: &Circuit, window: usize) -> Circuit {
    let mut engine = CancelEngine::new(circuit, window == usize::MAX);
    engine.scan(window, 0);
    engine.output()
}

/// Run [`cancel_with_window`] to a fixpoint.
pub fn cancel_fixpoint(circuit: &Circuit, window: usize) -> Circuit {
    let mut engine = CancelEngine::new(circuit, window == usize::MAX);
    let mut resume = 0usize;
    while let Some(dirty) = engine.scan(window, resume) {
        resume = dirty;
    }
    engine.output()
}

/// The tombstone cancel engine over one packed input circuit.
struct CancelEngine<'c> {
    circuit: &'c Circuit,
    /// Live flags (tombstone = false). Never resurrected.
    live: Vec<bool>,
    /// Doubly-linked list over processed live slots (bounded mode).
    prev: Vec<u32>,
    next: Vec<u32>,
    tail: u32,
    /// Per-qubit ascending slot indices of processed live gates touching
    /// that qubit (unbounded mode).
    writers: Vec<Vec<u32>>,
    /// Scratch: per-qubit cursor positions for the current walk.
    cursors: Vec<usize>,
    unbounded: bool,
}

impl<'c> CancelEngine<'c> {
    fn new(circuit: &'c Circuit, unbounded: bool) -> Self {
        let n = circuit.len();
        CancelEngine {
            circuit,
            live: vec![true; n],
            prev: if unbounded { Vec::new() } else { vec![NIL; n] },
            next: if unbounded { Vec::new() } else { vec![NIL; n] },
            tail: NIL,
            writers: if unbounded {
                vec![Vec::new(); circuit.num_qubits() as usize]
            } else {
                Vec::new()
            },
            cursors: Vec::new(),
            unbounded,
        }
    }

    /// One left-to-right pass over the live slots starting at `resume`
    /// (all live slots before `resume` are the already-stable prefix).
    /// Returns the earliest slot tombstoned by this pass, or `None` if
    /// the pass cancelled nothing (the fixpoint).
    fn scan(&mut self, window: usize, resume: usize) -> Option<usize> {
        self.truncate_to(resume);
        let mut min_dirty: Option<usize> = None;
        for i in resume..self.circuit.len() {
            if !self.live[i] {
                continue;
            }
            let partner = if self.unbounded {
                self.walk_unbounded(i)
            } else {
                self.walk_bounded(i, window)
            };
            match partner {
                Some(j) => {
                    self.live[j] = false;
                    self.live[i] = false;
                    if !self.unbounded {
                        self.splice_out(j);
                    }
                    min_dirty = Some(min_dirty.map_or(j, |d| d.min(j)));
                }
                None => self.append(i),
            }
        }
        min_dirty
    }

    /// Backward walk over at most `window + 1` live predecessors via the
    /// linked list. Returns the slot of the adjoint partner, if found.
    fn walk_bounded(&self, i: usize, window: usize) -> Option<usize> {
        let vi = self.circuit.view(i);
        let fi = self.circuit.footprint(i);
        let mut steps = 0usize;
        let mut j = self.tail;
        while j != NIL && steps <= window {
            let vj = self.circuit.view(j as usize);
            if vj.is_adjoint_of(&vi) {
                return Some(j as usize);
            }
            if !commutes_views(&vj, self.circuit.footprint(j as usize), &vi, fi) {
                return None;
            }
            steps += 1;
            j = self.prev[j as usize];
        }
        None
    }

    /// Backward walk via per-qubit last-writer lists: visits only live
    /// gates sharing a qubit with slot `i` (disjoint gates always commute
    /// and can never be the adjoint, so skipping them is exact).
    fn walk_unbounded(&mut self, i: usize) -> Option<usize> {
        let vi = self.circuit.view(i);
        let fi = self.circuit.footprint(i);
        let nq = vi.controls.len() + 1;
        self.cursors.clear();
        self.cursors
            .extend(vi.qubits().map(|q| self.writers[q as usize].len()));
        let mut pos = u32::MAX;
        loop {
            // j = the latest live slot < pos that touches a qubit of i.
            let mut j = NIL;
            for (slot, q) in vi.qubits().enumerate() {
                debug_assert!(slot < nq);
                let list = &self.writers[q as usize];
                let mut c = self.cursors[slot];
                while c > 0 {
                    let cand = list[c - 1];
                    if cand >= pos || !self.live[cand as usize] {
                        c -= 1;
                        continue;
                    }
                    break;
                }
                self.cursors[slot] = c;
                if c > 0 && (j == NIL || list[c - 1] > j) {
                    j = list[c - 1];
                }
            }
            if j == NIL {
                return None;
            }
            let vj = self.circuit.view(j as usize);
            if vj.is_adjoint_of(&vi) {
                return Some(j as usize);
            }
            if !commutes_views(&vj, self.circuit.footprint(j as usize), &vi, fi) {
                return None;
            }
            pos = j;
        }
    }

    /// Record slot `i` as processed and live.
    fn append(&mut self, i: usize) {
        if self.unbounded {
            let circuit = self.circuit;
            for q in circuit.view(i).qubits() {
                let list = &mut self.writers[q as usize];
                // Compact tombstoned tails while we are here (amortized).
                while list.last().is_some_and(|&s| !self.live[s as usize]) {
                    list.pop();
                }
                list.push(i as u32);
            }
        } else {
            let i = i as u32;
            self.prev[i as usize] = self.tail;
            self.next[i as usize] = NIL;
            if self.tail != NIL {
                self.next[self.tail as usize] = i;
            }
            self.tail = i;
        }
    }

    /// Unlink a tombstoned slot from the linked list (bounded mode).
    fn splice_out(&mut self, j: usize) {
        let (pj, nj) = (self.prev[j], self.next[j]);
        if nj != NIL {
            self.prev[nj as usize] = pj;
        } else {
            self.tail = pj;
        }
        if pj != NIL {
            self.next[pj as usize] = nj;
        }
    }

    /// Drop every processed slot at or beyond `resume` from the walk
    /// structures, keeping the stable prefix.
    fn truncate_to(&mut self, resume: usize) {
        if self.unbounded {
            for list in &mut self.writers {
                while list.last().is_some_and(|&s| s as usize >= resume) {
                    list.pop();
                }
            }
        } else {
            while self.tail != NIL && self.tail as usize >= resume {
                self.tail = self.prev[self.tail as usize];
            }
            if self.tail != NIL {
                self.next[self.tail as usize] = NIL;
            }
        }
    }

    /// Materialize the surviving gates, preserving the input's register
    /// width.
    fn output(&self) -> Circuit {
        let survivors = self.live.iter().filter(|&&l| l).count();
        let mut out = Circuit::with_capacity(self.circuit.num_qubits(), survivors);
        for i in 0..self.circuit.len() {
            if self.live[i] {
                out.push_view(self.circuit.view(i));
            }
        }
        out.ensure_qubits(self.circuit.num_qubits());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;

    fn circuit(gates: Vec<Gate>) -> Circuit {
        Circuit::from_gates(gates)
    }

    // The pre-refactor reference implementation the tombstone engine must
    // match gate-for-gate lives in `tests/optimizer_equivalence.rs`
    // (one copy, next to the differential proptests that use it).

    #[test]
    fn adjacent_self_inverse_cancels() {
        let c = circuit(vec![Gate::x(0), Gate::x(0)]);
        assert!(cancel_with_window(&c, 0).is_empty());
    }

    #[test]
    fn t_tdg_cancels() {
        let c = circuit(vec![Gate::T(0), Gate::Tdg(0)]);
        assert!(cancel_with_window(&c, 0).is_empty());
    }

    #[test]
    fn t_t_does_not_cancel() {
        let c = circuit(vec![Gate::T(0), Gate::T(0)]);
        assert_eq!(cancel_with_window(&c, 0).len(), 2);
    }

    #[test]
    fn cancellation_across_commuting_gate() {
        // X(0) .. CNOT(1,2) .. X(0): the CNOT commutes with X(0).
        let c = circuit(vec![Gate::x(0), Gate::cnot(1, 2), Gate::x(0)]);
        let small = cancel_with_window(&c, 0);
        assert_eq!(small.len(), 3, "window 0 cannot see through");
        let wide = cancel_with_window(&c, 4);
        assert_eq!(wide.len(), 1, "window 4 cancels the X pair");
        let unbounded = cancel_with_window(&c, usize::MAX);
        assert_eq!(unbounded.len(), 1, "unbounded cancels the X pair");
    }

    #[test]
    fn no_cancellation_through_blocker() {
        // H(0) between the two X(0) blocks cancellation at any window.
        let c = circuit(vec![Gate::x(0), Gate::h(0), Gate::x(0)]);
        assert_eq!(cancel_with_window(&c, usize::MAX).len(), 3);
    }

    #[test]
    fn toffoli_chain_uncompute_recompute_collapses() {
        // The paper Figure 16 pattern: V-chain uncompute followed by an
        // identical recompute cancels at the Toffoli level.
        let chain = [
            Gate::toffoli(0, 1, 5),
            Gate::toffoli(5, 2, 6),
            Gate::toffoli(6, 3, 7),
        ];
        let mut gates = Vec::new();
        gates.extend(chain.iter().cloned());
        gates.push(Gate::toffoli(7, 4, 8)); // payload 1
        gates.extend(chain.iter().rev().cloned()); // uncompute
        gates.extend(chain.iter().cloned()); // recompute
        gates.push(Gate::toffoli(7, 4, 9)); // payload 2
        gates.extend(chain.iter().rev().cloned());
        let c = circuit(gates);
        for window in [16, usize::MAX] {
            let reduced = cancel_fixpoint(&c, window);
            // Only one compute chain, two payloads, one uncompute remain.
            assert_eq!(reduced.len(), 3 + 1 + 1 + 3);
        }
    }

    #[test]
    fn fixpoint_handles_nested_pairs() {
        // A B B A with A,B self-inverse and non-commuting.
        let a = Gate::cnot(0, 1);
        let b = Gate::cnot(1, 2);
        let c = circuit(vec![a.clone(), b.clone(), b, a]);
        assert!(cancel_fixpoint(&c, 8).is_empty());
        let c2 = circuit(vec![
            Gate::cnot(0, 1),
            Gate::cnot(1, 2),
            Gate::cnot(1, 2),
            Gate::cnot(0, 1),
        ]);
        assert!(cancel_fixpoint(&c2, usize::MAX).is_empty());
    }

    #[test]
    fn cancellation_preserves_semantics() {
        use qcirc::sim::StateVec;
        let c = circuit(vec![
            Gate::h(0),
            Gate::toffoli(0, 1, 2),
            Gate::cnot(0, 3),
            Gate::cnot(0, 3),
            Gate::T(1),
            Gate::toffoli(0, 1, 2),
            Gate::Tdg(1),
        ]);
        let reduced = cancel_fixpoint(&c, usize::MAX);
        assert!(reduced.len() < c.len());
        for basis in 0..16u64 {
            let mut s1 = StateVec::basis(4, basis).unwrap();
            s1.run(&c).unwrap();
            let mut s2 = StateVec::basis(4, basis).unwrap();
            s2.run(&reduced).unwrap();
            assert!(s1.approx_eq_exact(&s2, 1e-9), "basis {basis}");
        }
    }
}
