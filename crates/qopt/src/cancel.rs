//! Gate-cancellation passes.
//!
//! The workhorse is a greedy stack algorithm: gates are appended to an
//! output list; each incoming gate walks backwards over gates it commutes
//! with, and if it meets its own adjoint the pair is removed. The walk
//! distance is the pass's *window*: peephole optimizers use a small
//! window, Toffoli-aware optimizers a large one, and the long-range
//! resynthesis pass an unbounded one (the paper's Section 8.5 explains why
//! window size decides whether conditional-narrowing structure is
//! recoverable).

use qcirc::{Circuit, Gate};

use crate::commute::commutes;

/// Cancel adjoint gate pairs, commuting candidates across at most `window`
/// intervening gates (`usize::MAX` for unbounded).
pub fn cancel_with_window(circuit: &Circuit, window: usize) -> Circuit {
    let mut out: Vec<Gate> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let mut cancelled = false;
        let mut steps = 0usize;
        // Walk back over commuting gates looking for the adjoint.
        let mut i = out.len();
        while i > 0 && steps <= window {
            let candidate = &out[i - 1];
            if *candidate == gate.adjoint() {
                out.remove(i - 1);
                cancelled = true;
                break;
            }
            if !commutes(candidate, gate) {
                break;
            }
            i -= 1;
            steps += 1;
        }
        if !cancelled {
            out.push(gate.clone());
        }
    }
    let mut result = Circuit::new(circuit.num_qubits());
    result.extend(out);
    result
}

/// Run [`cancel_with_window`] to a fixpoint.
pub fn cancel_fixpoint(circuit: &Circuit, window: usize) -> Circuit {
    let mut current = cancel_with_window(circuit, window);
    loop {
        let next = cancel_with_window(&current, window);
        if next.len() == current.len() {
            return next;
        }
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit(gates: Vec<Gate>) -> Circuit {
        Circuit::from_gates(gates)
    }

    #[test]
    fn adjacent_self_inverse_cancels() {
        let c = circuit(vec![Gate::x(0), Gate::x(0)]);
        assert!(cancel_with_window(&c, 0).is_empty());
    }

    #[test]
    fn t_tdg_cancels() {
        let c = circuit(vec![Gate::T(0), Gate::Tdg(0)]);
        assert!(cancel_with_window(&c, 0).is_empty());
    }

    #[test]
    fn t_t_does_not_cancel() {
        let c = circuit(vec![Gate::T(0), Gate::T(0)]);
        assert_eq!(cancel_with_window(&c, 0).len(), 2);
    }

    #[test]
    fn cancellation_across_commuting_gate() {
        // X(0) .. CNOT(1,2) .. X(0): the CNOT commutes with X(0).
        let c = circuit(vec![Gate::x(0), Gate::cnot(1, 2), Gate::x(0)]);
        let small = cancel_with_window(&c, 0);
        assert_eq!(small.len(), 3, "window 0 cannot see through");
        let wide = cancel_with_window(&c, 4);
        assert_eq!(wide.len(), 1, "window 4 cancels the X pair");
    }

    #[test]
    fn no_cancellation_through_blocker() {
        // H(0) between the two X(0) blocks cancellation at any window.
        let c = circuit(vec![Gate::x(0), Gate::h(0), Gate::x(0)]);
        assert_eq!(cancel_with_window(&c, usize::MAX).len(), 3);
    }

    #[test]
    fn toffoli_chain_uncompute_recompute_collapses() {
        // The paper Figure 16 pattern: V-chain uncompute followed by an
        // identical recompute cancels at the Toffoli level.
        let chain = [
            Gate::toffoli(0, 1, 5),
            Gate::toffoli(5, 2, 6),
            Gate::toffoli(6, 3, 7),
        ];
        let mut gates = Vec::new();
        gates.extend(chain.iter().cloned());
        gates.push(Gate::toffoli(7, 4, 8)); // payload 1
        gates.extend(chain.iter().rev().cloned()); // uncompute
        gates.extend(chain.iter().cloned()); // recompute
        gates.push(Gate::toffoli(7, 4, 9)); // payload 2
        gates.extend(chain.iter().rev().cloned());
        let c = circuit(gates);
        let reduced = cancel_fixpoint(&c, 16);
        // Only one compute chain, two payloads, one uncompute remain.
        assert_eq!(reduced.len(), 3 + 1 + 1 + 3);
    }

    #[test]
    fn fixpoint_handles_nested_pairs() {
        // A B B A with A,B self-inverse and non-commuting.
        let a = Gate::cnot(0, 1);
        let b = Gate::cnot(1, 2);
        let c = circuit(vec![a.clone(), b.clone(), b, a]);
        assert!(cancel_fixpoint(&c, 8).is_empty());
    }

    #[test]
    fn cancellation_preserves_semantics() {
        use qcirc::sim::StateVec;
        let c = circuit(vec![
            Gate::h(0),
            Gate::toffoli(0, 1, 2),
            Gate::cnot(0, 3),
            Gate::cnot(0, 3),
            Gate::T(1),
            Gate::toffoli(0, 1, 2),
            Gate::Tdg(1),
        ]);
        let reduced = cancel_fixpoint(&c, usize::MAX);
        assert!(reduced.len() < c.len());
        for basis in 0..16u64 {
            let mut s1 = StateVec::basis(4, basis).unwrap();
            s1.run(&c).unwrap();
            let mut s2 = StateVec::basis(4, basis).unwrap();
            s2.run(&reduced).unwrap();
            assert!(s1.approx_eq_exact(&s2, 1e-9), "basis {basis}");
        }
    }
}
