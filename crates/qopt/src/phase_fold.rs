//! Phase folding (rotation merging).
//!
//! This is the optimization of Nam et al. / Amy's Feynman that the paper
//! credits for the intermediate results of VOQC, Pytket ZX, and Feynman
//! `-toCliffordT` (Section 8.5): inside a region of {X, CNOT, phase}
//! gates, every qubit's state is an affine function (a *parity*) of the
//! region's inputs, phase gates commute freely to any point where their
//! parity is exposed, and rotations on the same parity merge mod 2π.
//! Hadamards and undecomposed Toffoli-or-larger gates cut the region by
//! assigning fresh parity labels.
//!
//! Merging is "an appropriate implementation of rotation merging … over an
//! unbounded number of gates" (paper Section 8.5) — but because the
//! Clifford+T decomposition of a Toffoli interleaves Hadamards, it cannot
//! recover Toffoli-level structure, which is exactly why the
//! `-toCliffordT`-style pipeline stays asymptotically quadratic on the
//! paper's benchmarks.
//!
//! The pass runs on the packed gate stream: the parity table is a dense
//! vector indexed by qubit (region splitting — the fresh-label
//! assignments on Hadamard/Toffoli boundaries — is an O(1) slot write,
//! not a hash-map insert), non-phase gates are carried through as slot
//! *indices* into the input circuit rather than cloned `Gate`s, and the
//! output is rebuilt by pushing views. The only per-gate allocations
//! left are the parity label vectors themselves, which are the pass's
//! mathematical payload.

use std::collections::HashMap;

use qcirc::{Circuit, Gate, GateKind, Qubit};

/// An affine function of region inputs: an XOR of labels plus a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Parity {
    labels: Vec<u32>, // sorted, duplicate-free
    constant: bool,
}

impl Parity {
    fn fresh(label: u32) -> Self {
        Parity {
            labels: vec![label],
            constant: false,
        }
    }

    fn xor_with(&mut self, other: &Parity) {
        let mut merged = Vec::with_capacity(self.labels.len() + other.labels.len());
        let (mut i, mut j) = (0, 0);
        while i < self.labels.len() && j < other.labels.len() {
            match self.labels[i].cmp(&other.labels[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.labels[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.labels[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.labels[i..]);
        merged.extend_from_slice(&other.labels[j..]);
        self.labels = merged;
        self.constant ^= other.constant;
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Index of a carried-through gate in the *input* circuit.
    Gate(u32),
    /// Placeholder where the merged rotation of term `terms[i]` will be
    /// emitted.
    Anchor(u32),
}

#[derive(Debug)]
struct Term {
    /// Net rotation amount in units of π/4, mod 8, as a coefficient of the
    /// parity's label part.
    amount: i32,
    /// Qubit at the anchor point.
    qubit: Qubit,
    /// The parity constant at the anchor point (rotations are emitted
    /// relative to it).
    anchor_constant: bool,
}

/// Fold phase rotations across {X, CNOT, phase} regions of a circuit,
/// merging rotations on equal parities. Preserves the unitary up to global
/// phase.
pub fn phase_fold(circuit: &Circuit) -> Circuit {
    let n_qubits = circuit.num_qubits() as usize;
    let mut next_label = 0u32;
    let mut parities: Vec<Parity> = (0..n_qubits)
        .map(|_| {
            let label = next_label;
            next_label += 1;
            Parity::fresh(label)
        })
        .collect();

    let mut slots: Vec<Slot> = Vec::with_capacity(circuit.len());
    let mut terms: Vec<Term> = Vec::new();
    let mut term_index: HashMap<Vec<u32>, u32> = HashMap::new();

    for (i, view) in circuit.iter().enumerate() {
        match view.kind {
            GateKind::Mcx if view.controls.is_empty() => {
                parities[view.target as usize].constant ^= true;
                slots.push(Slot::Gate(i as u32));
            }
            GateKind::Mcx if view.controls.len() == 1 => {
                let control = view.controls[0] as usize;
                let target = view.target as usize;
                // Split the table to xor one entry with another in place.
                // A degenerate control == target (constructible through the
                // public `Gate::Mcx` variant, though rejected by the gate
                // constructors and the `.qc` parser) xors the parity with
                // itself, like the pre-refactor table-based code did.
                match control.cmp(&target) {
                    std::cmp::Ordering::Less => {
                        let (lo, hi) = parities.split_at_mut(target);
                        hi[0].xor_with(&lo[control]);
                    }
                    std::cmp::Ordering::Greater => {
                        let (lo, hi) = parities.split_at_mut(control);
                        lo[target].xor_with(&hi[0]);
                    }
                    std::cmp::Ordering::Equal => {
                        let source = parities[control].clone();
                        parities[target].xor_with(&source);
                    }
                }
                slots.push(Slot::Gate(i as u32));
            }
            GateKind::Mcx | GateKind::Mch => {
                // Region split: the target leaves the linear domain and
                // gets a fresh parity label.
                parities[view.target as usize] = Parity::fresh(next_label);
                next_label += 1;
                slots.push(Slot::Gate(i as u32));
            }
            phase => {
                let amount: i32 = match phase {
                    GateKind::T => 1,
                    GateKind::S => 2,
                    GateKind::Z => 4,
                    GateKind::Sdg => 6,
                    GateKind::Tdg => 7,
                    _ => unreachable!("Mcx/Mch handled above"),
                };
                let parity = &parities[view.target as usize];
                // Rotation on (c ⊕ x_L) contributes ±amount to the x_L
                // coefficient (the sign flip absorbs a global phase).
                let signed = if parity.constant { -amount } else { amount };
                match term_index.get(&parity.labels) {
                    Some(&t) => {
                        let term = &mut terms[t as usize];
                        term.amount = (term.amount + signed).rem_euclid(8);
                    }
                    None => {
                        let t = terms.len() as u32;
                        slots.push(Slot::Anchor(t));
                        terms.push(Term {
                            amount: signed.rem_euclid(8),
                            qubit: view.target,
                            anchor_constant: parity.constant,
                        });
                        term_index.insert(parity.labels.clone(), t);
                    }
                }
            }
        }
    }

    let mut out = Circuit::with_capacity(circuit.num_qubits(), slots.len());
    for slot in slots {
        match slot {
            Slot::Gate(i) => out.push_view(circuit.view(i as usize)),
            Slot::Anchor(t) => {
                let term = &terms[t as usize];
                let physical = if term.anchor_constant {
                    (-term.amount).rem_euclid(8)
                } else {
                    term.amount.rem_euclid(8)
                };
                emit_rotation(physical as u8, term.qubit, &mut out);
            }
        }
    }
    out.ensure_qubits(circuit.num_qubits());
    out
}

/// Emit a π/4-unit rotation of the given amount (mod 8) as Clifford+T
/// gates; amounts 0..=7 use at most one T gate.
fn emit_rotation(amount: u8, q: Qubit, out: &mut Circuit) {
    match amount % 8 {
        0 => {}
        1 => out.push(Gate::T(q)),
        2 => out.push(Gate::S(q)),
        3 => {
            out.push(Gate::S(q));
            out.push(Gate::T(q));
        }
        4 => out.push(Gate::Z(q)),
        5 => {
            out.push(Gate::Z(q));
            out.push(Gate::T(q));
        }
        6 => out.push(Gate::Sdg(q)),
        7 => out.push(Gate::Tdg(q)),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::sim::StateVec;

    fn t_count(c: &Circuit) -> u64 {
        c.clifford_t_counts().t_count()
    }

    fn assert_equiv_up_to_global_phase(a: &Circuit, b: &Circuit, qubits: u32) {
        for basis in 0..(1u64 << qubits) {
            let mut s1 = StateVec::basis(qubits, basis).unwrap();
            s1.run(a).unwrap();
            let mut s2 = StateVec::basis(qubits, basis).unwrap();
            s2.run(b).unwrap();
            // Basis states are eigenvectors of diagonal rewrites only up to
            // global phase; compare fidelity.
            assert!(
                (s1.fidelity(&s2) - 1.0).abs() < 1e-9,
                "fidelity {} on basis {basis:#b}",
                s1.fidelity(&s2)
            );
        }
    }

    #[test]
    fn two_ts_merge_into_s() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0);
        assert_eq!(folded.to_gates(), vec![Gate::S(0)]);
    }

    #[test]
    fn t_tdg_annihilate() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::x(1), Gate::Tdg(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0);
    }

    #[test]
    fn merge_across_cnot_conjugation() {
        // T(1); CNOT(0,1); ...; CNOT(0,1); T(1): the parities at the two
        // T's are equal, so they merge to S even though gates intervene.
        let c = Circuit::from_gates(vec![
            Gate::T(1),
            Gate::cnot(0, 1),
            Gate::T(0),
            Gate::cnot(0, 1),
            Gate::T(1),
        ]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 1, "{folded}");
        assert_equiv_up_to_global_phase(&c, &folded, 2);
    }

    #[test]
    fn x_conjugation_flips_sign() {
        // X T X ≡ (global phase) T†, so X T X T folds to ... X X global.
        let c = Circuit::from_gates(vec![Gate::x(0), Gate::T(0), Gate::x(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0, "{folded}");
        assert_equiv_up_to_global_phase(&c, &folded, 1);
    }

    #[test]
    fn hadamard_blocks_merging() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::h(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 2);
        assert_equiv_up_to_global_phase(&c, &folded, 1);
    }

    #[test]
    fn preserves_semantics_on_mixed_circuit() {
        let c = Circuit::from_gates(vec![
            Gate::h(0),
            Gate::T(0),
            Gate::cnot(0, 1),
            Gate::T(1),
            Gate::cnot(0, 1),
            Gate::Tdg(1),
            Gate::toffoli(0, 1, 2),
            Gate::T(2),
            Gate::cnot(1, 2),
            Gate::S(2),
            Gate::h(2),
            Gate::T(2),
        ]);
        let folded = phase_fold(&c);
        assert_equiv_up_to_global_phase(&c, &folded, 3);
        assert!(t_count(&folded) <= t_count(&c));
    }

    #[test]
    fn degenerate_self_controlled_cnot_does_not_panic() {
        // `Gate::Mcx` is a public variant, so a control equal to the
        // target can reach the pass without going through the validating
        // constructors (the `.qc` parser now rejects it). The parity xors
        // with itself — labels cancel — exactly as the pre-refactor
        // table-based implementation behaved.
        let degenerate = Gate::Mcx {
            controls: vec![0],
            target: 0,
        };
        let c = Circuit::from_gates(vec![Gate::T(0), degenerate.clone(), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert!(folded.to_gates().contains(&degenerate));
    }

    #[test]
    fn folds_decomposed_toffoli_pair_partially() {
        // Figure 17: two adjacent decomposed Toffolis. Phase folding alone
        // cannot fully reduce them (Hadamards intervene), mirroring the
        // paper's observation about Clifford+T-level optimizers.
        let mut c = Circuit::new(3);
        qcirc::decompose::emit_toffoli_7t(0, 1, 2, &mut c);
        qcirc::decompose::emit_toffoli_7t(0, 1, 2, &mut c);
        let folded = phase_fold(&c);
        assert!(t_count(&folded) > 0, "H-separated structure survives");
        assert_equiv_up_to_global_phase(&c, &folded, 3);
    }
}
