//! Phase folding (rotation merging).
//!
//! This is the optimization of Nam et al. / Amy's Feynman that the paper
//! credits for the intermediate results of VOQC, Pytket ZX, and Feynman
//! `-toCliffordT` (Section 8.5): inside a region of {X, CNOT, phase}
//! gates, every qubit's state is an affine function (a *parity*) of the
//! region's inputs, phase gates commute freely to any point where their
//! parity is exposed, and rotations on the same parity merge mod 2π.
//! Hadamards and undecomposed Toffoli-or-larger gates cut the region by
//! assigning fresh parity labels.
//!
//! Merging is "an appropriate implementation of rotation merging … over an
//! unbounded number of gates" (paper Section 8.5) — but because the
//! Clifford+T decomposition of a Toffoli interleaves Hadamards, it cannot
//! recover Toffoli-level structure, which is exactly why the
//! `-toCliffordT`-style pipeline stays asymptotically quadratic on the
//! paper's benchmarks.

use std::collections::HashMap;

use qcirc::{Circuit, Gate, Qubit};

/// An affine function of region inputs: an XOR of labels plus a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Parity {
    labels: Vec<u32>, // sorted, duplicate-free
    constant: bool,
}

impl Parity {
    fn fresh(label: u32) -> Self {
        Parity {
            labels: vec![label],
            constant: false,
        }
    }

    fn xor_with(&mut self, other: &Parity) {
        let mut merged = Vec::with_capacity(self.labels.len() + other.labels.len());
        let (mut i, mut j) = (0, 0);
        while i < self.labels.len() && j < other.labels.len() {
            match self.labels[i].cmp(&other.labels[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(self.labels[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.labels[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&self.labels[i..]);
        merged.extend_from_slice(&other.labels[j..]);
        self.labels = merged;
        self.constant ^= other.constant;
    }
}

#[derive(Debug)]
enum Slot {
    Gate(Gate),
    /// Placeholder where a merged rotation for a term key will be emitted.
    Anchor(Vec<u32>),
}

#[derive(Debug)]
struct Term {
    /// Net rotation amount in units of π/4, mod 8, as a coefficient of the
    /// parity's label part.
    amount: i32,
    /// Qubit at the anchor point.
    qubit: Qubit,
    /// The parity constant at the anchor point (rotations are emitted
    /// relative to it).
    anchor_constant: bool,
}

/// Fold phase rotations across {X, CNOT, phase} regions of a circuit,
/// merging rotations on equal parities. Preserves the unitary up to global
/// phase.
pub fn phase_fold(circuit: &Circuit) -> Circuit {
    let mut parities: HashMap<Qubit, Parity> = HashMap::new();
    let mut next_label = 0u32;
    let fresh = |parities: &mut HashMap<Qubit, Parity>, q: Qubit, next_label: &mut u32| {
        let label = *next_label;
        *next_label += 1;
        parities.insert(q, Parity::fresh(label));
    };
    for q in 0..circuit.num_qubits() {
        fresh(&mut parities, q, &mut next_label);
    }

    let mut slots: Vec<Slot> = Vec::with_capacity(circuit.len());
    let mut terms: HashMap<Vec<u32>, Term> = HashMap::new();

    for gate in circuit.gates() {
        match gate {
            Gate::Mcx { controls, target } if controls.is_empty() => {
                parities.get_mut(target).expect("initialized").constant ^= true;
                slots.push(Slot::Gate(gate.clone()));
            }
            Gate::Mcx { controls, target } if controls.len() == 1 => {
                let source = parities[&controls[0]].clone();
                parities
                    .get_mut(target)
                    .expect("initialized")
                    .xor_with(&source);
                slots.push(Slot::Gate(gate.clone()));
            }
            Gate::Mcx { target, .. } => {
                // Toffoli or larger: target leaves the linear domain.
                fresh(&mut parities, *target, &mut next_label);
                slots.push(Slot::Gate(gate.clone()));
            }
            Gate::Mch { target, .. } => {
                fresh(&mut parities, *target, &mut next_label);
                slots.push(Slot::Gate(gate.clone()));
            }
            Gate::T(q) | Gate::Tdg(q) | Gate::S(q) | Gate::Sdg(q) | Gate::Z(q) => {
                let amount: i32 = match gate {
                    Gate::T(_) => 1,
                    Gate::S(_) => 2,
                    Gate::Z(_) => 4,
                    Gate::Sdg(_) => 6,
                    Gate::Tdg(_) => 7,
                    _ => unreachable!(),
                };
                let parity = parities[q].clone();
                // Rotation on (c ⊕ x_L) contributes ±amount to the x_L
                // coefficient (the sign flip absorbs a global phase).
                let signed = if parity.constant { -amount } else { amount };
                let term = terms.entry(parity.labels.clone()).or_insert_with(|| {
                    slots.push(Slot::Anchor(parity.labels.clone()));
                    Term {
                        amount: 0,
                        qubit: *q,
                        anchor_constant: parity.constant,
                    }
                });
                term.amount = (term.amount + signed).rem_euclid(8);
            }
        }
    }

    let mut out = Circuit::new(circuit.num_qubits());
    for slot in slots {
        match slot {
            Slot::Gate(g) => out.push(g),
            Slot::Anchor(key) => {
                let term = &terms[&key];
                let physical = if term.anchor_constant {
                    (-term.amount).rem_euclid(8)
                } else {
                    term.amount.rem_euclid(8)
                };
                emit_rotation(physical as u8, term.qubit, &mut out);
            }
        }
    }
    out
}

/// Emit a π/4-unit rotation of the given amount (mod 8) as Clifford+T
/// gates; amounts 0..=7 use at most one T gate.
fn emit_rotation(amount: u8, q: Qubit, out: &mut Circuit) {
    match amount % 8 {
        0 => {}
        1 => out.push(Gate::T(q)),
        2 => out.push(Gate::S(q)),
        3 => {
            out.push(Gate::S(q));
            out.push(Gate::T(q));
        }
        4 => out.push(Gate::Z(q)),
        5 => {
            out.push(Gate::Z(q));
            out.push(Gate::T(q));
        }
        6 => out.push(Gate::Sdg(q)),
        7 => out.push(Gate::Tdg(q)),
        _ => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::sim::StateVec;

    fn t_count(c: &Circuit) -> u64 {
        c.clifford_t_counts().t_count()
    }

    fn assert_equiv_up_to_global_phase(a: &Circuit, b: &Circuit, qubits: u32) {
        for basis in 0..(1u64 << qubits) {
            let mut s1 = StateVec::basis(qubits, basis).unwrap();
            s1.run(a).unwrap();
            let mut s2 = StateVec::basis(qubits, basis).unwrap();
            s2.run(b).unwrap();
            // Basis states are eigenvectors of diagonal rewrites only up to
            // global phase; compare fidelity.
            assert!(
                (s1.fidelity(&s2) - 1.0).abs() < 1e-9,
                "fidelity {} on basis {basis:#b}",
                s1.fidelity(&s2)
            );
        }
    }

    #[test]
    fn two_ts_merge_into_s() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0);
        assert_eq!(folded.gates(), &[Gate::S(0)]);
    }

    #[test]
    fn t_tdg_annihilate() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::x(1), Gate::Tdg(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0);
    }

    #[test]
    fn merge_across_cnot_conjugation() {
        // T(1); CNOT(0,1); ...; CNOT(0,1); T(1): the parities at the two
        // T's are equal, so they merge to S even though gates intervene.
        let c = Circuit::from_gates(vec![
            Gate::T(1),
            Gate::cnot(0, 1),
            Gate::T(0),
            Gate::cnot(0, 1),
            Gate::T(1),
        ]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 1, "{folded}");
        assert_equiv_up_to_global_phase(&c, &folded, 2);
    }

    #[test]
    fn x_conjugation_flips_sign() {
        // X T X ≡ (global phase) T†, so X T X T folds to ... X X global.
        let c = Circuit::from_gates(vec![Gate::x(0), Gate::T(0), Gate::x(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 0, "{folded}");
        assert_equiv_up_to_global_phase(&c, &folded, 1);
    }

    #[test]
    fn hadamard_blocks_merging() {
        let c = Circuit::from_gates(vec![Gate::T(0), Gate::h(0), Gate::T(0)]);
        let folded = phase_fold(&c);
        assert_eq!(t_count(&folded), 2);
        assert_equiv_up_to_global_phase(&c, &folded, 1);
    }

    #[test]
    fn preserves_semantics_on_mixed_circuit() {
        let c = Circuit::from_gates(vec![
            Gate::h(0),
            Gate::T(0),
            Gate::cnot(0, 1),
            Gate::T(1),
            Gate::cnot(0, 1),
            Gate::Tdg(1),
            Gate::toffoli(0, 1, 2),
            Gate::T(2),
            Gate::cnot(1, 2),
            Gate::S(2),
            Gate::h(2),
            Gate::T(2),
        ]);
        let folded = phase_fold(&c);
        assert_equiv_up_to_global_phase(&c, &folded, 3);
        assert!(t_count(&folded) <= t_count(&c));
    }

    #[test]
    fn folds_decomposed_toffoli_pair_partially() {
        // Figure 17: two adjacent decomposed Toffolis. Phase folding alone
        // cannot fully reduce them (Hadamards intervene), mirroring the
        // paper's observation about Clifford+T-level optimizers.
        let mut c = Circuit::new(3);
        qcirc::decompose::emit_toffoli_7t(0, 1, 2, &mut c);
        qcirc::decompose::emit_toffoli_7t(0, 1, 2, &mut c);
        let folded = phase_fold(&c);
        assert!(t_count(&folded) > 0, "H-separated structure survives");
        assert_equiv_up_to_global_phase(&c, &folded, 3);
    }
}
