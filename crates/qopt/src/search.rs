//! Search-based optimizer analogue (Quartz / QUESO, paper Appendix G).
//!
//! Quartz and QUESO discover rewrites by open-ended search under a
//! wall-clock timeout: a preprocessing phase (rotation merging, greedy CCZ
//! decomposition) followed by rule-driven exploration. The paper found
//! that for control-flow circuits the preprocessing dominates the T-count
//! improvement while search mostly trims H and CNOT gates (Appendix G's
//! quote from the Quartz developers), and the output stays asymptotically
//! quadratic.
//!
//! [`SearchOpt`] mirrors that architecture: optional rotation-merging
//! preprocessing, optional decomposition phase, and a randomized
//! cancellation search that runs until a time budget expires.

use std::time::{Duration, Instant};

use qcirc::decompose::{mcx_to_toffoli, toffoli_to_clifford_t};
use qcirc::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cancel::cancel_with_window;
use crate::passes::CircuitOptimizer;
use crate::phase_fold::phase_fold;

/// Configuration of the search-based optimizer.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Run rotation merging in preprocessing ("RM" in paper Table 6).
    pub rotation_merge: bool,
    /// Run the greedy decomposition cleanup in preprocessing
    /// ("CD" in paper Table 6).
    pub greedy_decompose: bool,
    /// Run the randomized search phase at all.
    pub search: bool,
    /// Wall-clock budget for the search phase.
    pub timeout: Duration,
    /// RNG seed (search is deterministic given seed and budget exhaustion).
    pub seed: u64,
}

impl SearchConfig {
    /// Quartz-style default: RM + CD preprocessing plus search.
    pub fn quartz() -> Self {
        SearchConfig {
            rotation_merge: true,
            greedy_decompose: true,
            search: true,
            timeout: Duration::from_millis(200),
            seed: 0xC0FFEE,
        }
    }

    /// Quartz v0.1.1 "RM only" configuration (paper Table 6).
    pub fn quartz_rm_only() -> Self {
        SearchConfig {
            rotation_merge: true,
            greedy_decompose: false,
            search: false,
            timeout: Duration::ZERO,
            seed: 0xC0FFEE,
        }
    }

    /// Quartz v0.1.1 "RM + search" configuration (paper Table 6).
    pub fn quartz_rm_search() -> Self {
        SearchConfig {
            rotation_merge: true,
            greedy_decompose: false,
            search: true,
            timeout: Duration::from_millis(200),
            seed: 0xC0FFEE,
        }
    }

    /// QUESO-style configuration: symbolic-rule search with a smaller
    /// window and its own seed.
    pub fn queso() -> Self {
        SearchConfig {
            rotation_merge: false,
            greedy_decompose: true,
            search: true,
            timeout: Duration::from_millis(200),
            seed: 0x5EED,
        }
    }
}

/// The search-based optimizer.
#[derive(Debug, Clone)]
pub struct SearchOpt {
    /// Name used in reports.
    pub label: &'static str,
    /// What it stands for.
    pub stands_for: &'static str,
    /// Configuration.
    pub config: SearchConfig,
}

impl SearchOpt {
    /// Quartz analogue with its default configuration.
    pub fn quartz() -> Self {
        SearchOpt {
            label: "quartz-search",
            stands_for: "Quartz superoptimizer",
            config: SearchConfig::quartz(),
        }
    }

    /// QUESO analogue.
    pub fn queso() -> Self {
        SearchOpt {
            label: "queso-search",
            stands_for: "QUESO synthesized optimizer",
            config: SearchConfig::queso(),
        }
    }

    /// An analogue with a custom configuration.
    pub fn with_config(label: &'static str, config: SearchConfig) -> Self {
        SearchOpt {
            label,
            stands_for: "Quartz variant",
            config,
        }
    }
}

impl CircuitOptimizer for SearchOpt {
    fn name(&self) -> &'static str {
        self.label
    }

    fn analogue_of(&self) -> &'static str {
        self.stands_for
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let decomposed = toffoli_to_clifford_t(&mcx_to_toffoli(circuit))
            .expect("arity <= 2 after mcx_to_toffoli");
        let mut current = decomposed;
        if self.config.rotation_merge {
            current = phase_fold(&current);
        }
        if self.config.greedy_decompose {
            current = cancel_with_window(&current, 1);
        }
        if self.config.search {
            current = search_phase(&current, &self.config);
        }
        current
    }
}

/// The randomized search: repeatedly apply cancellation passes with random
/// windows, keeping any result that does not regress the gate counts,
/// until the budget runs out or a fixpoint is reached.
fn search_phase(circuit: &Circuit, config: &SearchConfig) -> Circuit {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best = circuit.clone();
    let mut stagnant = 0u32;
    while start.elapsed() < config.timeout && stagnant < 8 {
        let window = 1usize << rng.random_range(0..6u32);
        let candidate = cancel_with_window(&best, window);
        let better_len = candidate.len() < best.len();
        let same_t = candidate.clifford_t_counts().t_count() <= best.clifford_t_counts().t_count();
        if better_len && same_t {
            best = candidate;
            stagnant = 0;
        } else {
            stagnant += 1;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::Gate;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(0);
        for level in 1..=4u32 {
            let controls: Vec<u32> = (0..level).collect();
            c.push(Gate::mcx(controls.clone(), 10 + level));
            c.push(Gate::mcx(controls, 10 + level));
        }
        c
    }

    #[test]
    fn rm_only_reduces_t_without_touching_structure() {
        let circuit = sample_circuit();
        let naive = qcirc::decompose::to_clifford_t(&circuit).unwrap();
        let rm = SearchOpt::with_config("rm", SearchConfig::quartz_rm_only());
        let out = rm.optimize(&circuit);
        assert!(
            out.clifford_t_counts().t_count() < naive.clifford_t_counts().t_count(),
            "rotation merging should reduce T"
        );
    }

    #[test]
    fn search_trims_clifford_gates() {
        let circuit = sample_circuit();
        let rm_only = SearchOpt::with_config("rm", SearchConfig::quartz_rm_only());
        let rm_search = SearchOpt::with_config("rms", SearchConfig::quartz_rm_search());
        let a = rm_only.optimize(&circuit);
        let b = rm_search.optimize(&circuit);
        let (ca, cb) = (a.clifford_t_counts(), b.clifford_t_counts());
        assert!(cb.t_count() <= ca.t_count());
        assert!(
            cb.h + cb.cnot <= ca.h + ca.cnot,
            "search should not regress Clifford counts"
        );
    }

    #[test]
    fn search_is_deterministic_for_a_seed() {
        let circuit = sample_circuit();
        let opt = SearchOpt::quartz();
        let a = opt.optimize(&circuit);
        let b = opt.optimize(&circuit);
        assert_eq!(a, b);
    }

    #[test]
    fn queso_produces_clifford_t() {
        let out = SearchOpt::queso().optimize(&sample_circuit());
        let counts = out.clifford_t_counts();
        assert_eq!(counts.toffoli + counts.mcx_large + counts.ch, 0);
    }
}
