//! Post-pass certification: re-verify every optimizer output.
//!
//! Wraps any [`CircuitOptimizer`] so that each `optimize` call is followed
//! by `spire-verify`'s pass certification — structural well-formedness of
//! the rewritten stream (footprint audit included) and the T-count
//! non-increase invariant every pass in this crate promises. A failure is
//! always an optimizer bug, so certification panics with the full
//! diagnostic list rather than returning it.
//!
//! Certification runs when `debug_assertions` are on (so every test build
//! certifies for free) or when the `QOPT_CERTIFY` environment variable is
//! set to anything but `0`/`off` (the release-build opt-in).

use qcirc::Circuit;

use crate::passes::CircuitOptimizer;

/// Whether pass certification is active for this process.
pub fn certification_enabled() -> bool {
    if cfg!(debug_assertions) {
        return true;
    }
    std::env::var_os("QOPT_CERTIFY").is_some_and(|v| v != *"0" && v != *"off")
}

/// A [`CircuitOptimizer`] whose output is certified after every call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Certified<O>(pub O);

impl<O: CircuitOptimizer> CircuitOptimizer for Certified<O> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn analogue_of(&self) -> &'static str {
        self.0.analogue_of()
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let optimized = self.0.optimize(circuit);
        if certification_enabled() {
            spire_verify::assert_certified(self.0.name(), circuit, &optimized);
        }
        optimized
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::ToffoliCancel;
    use qcirc::Gate;

    #[test]
    fn certified_pass_is_transparent_on_clean_rewrites() {
        let mut c = Circuit::new(4);
        c.push(Gate::mcx(vec![0, 1, 2], 3));
        c.push(Gate::mcx(vec![0, 1, 2], 3));
        let plain = ToffoliCancel.optimize(&c);
        let certified = Certified(ToffoliCancel).optimize(&c);
        assert_eq!(plain.content_hash(), certified.content_hash());
        assert_eq!(Certified(ToffoliCancel).name(), ToffoliCancel.name());
    }

    struct Bloater;

    impl CircuitOptimizer for Bloater {
        fn name(&self) -> &'static str {
            "bloater"
        }

        fn analogue_of(&self) -> &'static str {
            "a buggy pass"
        }

        fn optimize(&self, circuit: &Circuit) -> Circuit {
            let mut out = circuit.clone();
            out.push(Gate::mcx(vec![0, 1], 2));
            out
        }
    }

    #[test]
    #[should_panic(expected = "failed certification")]
    fn certified_pass_catches_t_increase() {
        // Release test builds carry no `debug_assertions`, so opt in via
        // the environment switch — this test must catch the bug in every
        // profile. The other tests in this process only pass clean
        // rewrites, so certifying them too is harmless.
        std::env::set_var("QOPT_CERTIFY", "1");
        let c = Circuit::new(3);
        let _ = Certified(Bloater).optimize(&c);
    }
}
