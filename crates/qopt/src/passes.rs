//! The named optimizer analogues used in the paper's evaluation
//! (Section 8.3). Every optimizer accepts an MCX-level circuit (as the
//! Spire compiler emits) and returns a Clifford+T circuit; where the real
//! tool required preprocessing, the analogue performs the equivalent
//! lowering internally, mirroring the paper's methodology of feeding each
//! optimizer the gate set it accepts.
//!
//! | analogue | stands for | mechanism |
//! |---|---|---|
//! | [`AdjacentCancel`] | Qiskit `transpile -O3` | Clifford+T peephole |
//! | [`Peephole`] | Pytket `FullPeepholeOptimise` | wider peephole |
//! | [`PhaseFoldLight`] | VOQC `optimize_nam` | rotation merging |
//! | [`ZxGraphLike`] | Pytket `ZXGraphlikeOptimisation` | rotation merging variant |
//! | [`CliffordTResynth`] | Feynman `-toCliffordT -O2` | decompose, then fold/cancel to fixpoint |
//! | [`ToffoliCancel`] | Feynman `-mctExpand -O2` | cancel at the Toffoli level first |
//! | [`GlobalResynth`] | QuiZX `full_simp` | unbounded-window cancellation + folding |
//!
//! The mechanism determines the asymptotics on control-flow circuits
//! (paper Section 8.5): only the Toffoli-level passes recover linear
//! T-complexity.

use qcirc::decompose::{mcx_to_toffoli, toffoli_to_clifford_t};
use qcirc::Circuit;

use crate::cancel::cancel_fixpoint;
use crate::phase_fold::phase_fold;

/// A circuit optimizer in the style of the paper's Section 8.3 baselines.
pub trait CircuitOptimizer {
    /// Short identifier used in reports (e.g. `"feynman-mctexpand"`).
    fn name(&self) -> &'static str;

    /// The published tool this analogue stands for.
    fn analogue_of(&self) -> &'static str;

    /// Optimize an MCX-level circuit into a Clifford+T circuit.
    fn optimize(&self, circuit: &Circuit) -> Circuit;
}

impl std::fmt::Debug for dyn CircuitOptimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CircuitOptimizer({})", self.name())
    }
}

fn decompose(circuit: &Circuit) -> Circuit {
    toffoli_to_clifford_t(&mcx_to_toffoli(circuit)).expect("mcx_to_toffoli leaves arity <= 2")
}

/// Qiskit-style adjacent-gate cancellation on the Clifford+T circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjacentCancel;

impl CircuitOptimizer for AdjacentCancel {
    fn name(&self) -> &'static str {
        "adjacent-cancel"
    }

    fn analogue_of(&self) -> &'static str {
        "Qiskit transpile optimization_level=3"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        cancel_fixpoint(&decompose(circuit), 1)
    }
}

/// Pytket-style peephole: adjacent cancellation with a slightly wider
/// window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Peephole;

impl CircuitOptimizer for Peephole {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn analogue_of(&self) -> &'static str {
        "Pytket FullPeepholeOptimise"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        cancel_fixpoint(&decompose(circuit), 4)
    }
}

/// VOQC-style rotation merging over the Clifford+T circuit.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseFoldLight;

impl CircuitOptimizer for PhaseFoldLight {
    fn name(&self) -> &'static str {
        "phase-fold"
    }

    fn analogue_of(&self) -> &'static str {
        "VOQC optimize_nam"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        cancel_fixpoint(&phase_fold(&decompose(circuit)), 2)
    }
}

/// Pytket-ZX-style variant: cancellation before and after folding.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZxGraphLike;

impl CircuitOptimizer for ZxGraphLike {
    fn name(&self) -> &'static str {
        "zx-graphlike"
    }

    fn analogue_of(&self) -> &'static str {
        "Pytket ZXGraphlikeOptimisation"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let c = cancel_fixpoint(&decompose(circuit), 2);
        cancel_fixpoint(&phase_fold(&c), 2)
    }
}

/// Feynman `-toCliffordT`: decompose first, then fold and cancel to a
/// fixpoint. Better constants than the peepholes, still quadratic on
/// control-flow circuits (the Hadamards inside decomposed Toffolis block
/// the folding regions).
#[derive(Debug, Clone, Copy, Default)]
pub struct CliffordTResynth;

impl CircuitOptimizer for CliffordTResynth {
    fn name(&self) -> &'static str {
        "feynman-tocliffordt"
    }

    fn analogue_of(&self) -> &'static str {
        "Feynman feynopt -toCliffordT -O2"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let mut current = decompose(circuit);
        loop {
            let next = cancel_fixpoint(&phase_fold(&current), 16);
            if next.len() >= current.len() {
                return current;
            }
            current = next;
        }
    }
}

/// Feynman `-mctExpand`: cancel at the Toffoli level *before* decomposing.
/// This captures conditional flattening (paper Section 8.5) and recovers
/// asymptotically efficient circuits.
#[derive(Debug, Clone, Copy, Default)]
pub struct ToffoliCancel;

impl CircuitOptimizer for ToffoliCancel {
    fn name(&self) -> &'static str {
        "feynman-mctexpand"
    }

    fn analogue_of(&self) -> &'static str {
        "Feynman feynopt -mctExpand -O2"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let toffoli_level = cancel_fixpoint(&mcx_to_toffoli(circuit), 64);
        let clifford_t =
            toffoli_to_clifford_t(&toffoli_level).expect("arity <= 2 after mcx_to_toffoli");
        cancel_fixpoint(&phase_fold(&clifford_t), 16)
    }
}

/// QuiZX-style long-range resynthesis: unbounded-window cancellation at the
/// Toffoli level, then folding and unbounded cancellation at the
/// Clifford+T level, iterated to a fixpoint. Finds the most structure and
/// takes the most time (the paper reports QuiZX 14×–6500× slower than
/// Feynman).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalResynth;

impl CircuitOptimizer for GlobalResynth {
    fn name(&self) -> &'static str {
        "global-resynth"
    }

    fn analogue_of(&self) -> &'static str {
        "QuiZX full_simp"
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        let toffoli_level = cancel_fixpoint(&mcx_to_toffoli(circuit), usize::MAX);
        let mut current =
            toffoli_to_clifford_t(&toffoli_level).expect("arity <= 2 after mcx_to_toffoli");
        loop {
            let next = cancel_fixpoint(&phase_fold(&current), usize::MAX);
            if next.len() >= current.len() {
                return current;
            }
            current = next;
        }
    }
}

/// All fixed-strategy optimizers, in the order the paper lists them
/// (the search-based optimizers live in [`crate::SearchOpt`]).
pub fn registry() -> Vec<Box<dyn CircuitOptimizer>> {
    vec![
        Box::new(AdjacentCancel),
        Box::new(Peephole),
        Box::new(PhaseFoldLight),
        Box::new(ZxGraphLike),
        Box::new(CliffordTResynth),
        Box::new(ToffoliCancel),
        Box::new(GlobalResynth),
    ]
}

/// [`registry`] with every pass wrapped in [`crate::Certified`]: each
/// application is re-verified (structural audit plus the T-count
/// non-increase invariant) when certification is active — always under
/// `debug_assertions`, or via `QOPT_CERTIFY=1` in release builds.
pub fn registry_certified() -> Vec<Box<dyn CircuitOptimizer>> {
    vec![
        Box::new(crate::Certified(AdjacentCancel)),
        Box::new(crate::Certified(Peephole)),
        Box::new(crate::Certified(PhaseFoldLight)),
        Box::new(crate::Certified(ZxGraphLike)),
        Box::new(crate::Certified(CliffordTResynth)),
        Box::new(crate::Certified(ToffoliCancel)),
        Box::new(crate::Certified(GlobalResynth)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcirc::sim::StateVec;
    use qcirc::Gate;

    /// A miniature "compiled control flow" circuit in the Figure 16 style:
    /// consecutive MCX gates sharing a deep control set.
    fn control_flow_circuit(levels: u32) -> Circuit {
        let mut c = Circuit::new(0);
        for level in 1..=levels {
            let controls: Vec<u32> = (0..level).collect();
            // Two body gates per level, as nested ifs would produce.
            c.push(Gate::mcx(controls.clone(), levels + 2 * level));
            c.push(Gate::mcx(controls, levels + 2 * level + 1));
        }
        c
    }

    #[test]
    fn all_optimizers_produce_clifford_t() {
        let circuit = control_flow_circuit(4);
        for opt in registry() {
            let out = opt.optimize(&circuit);
            let counts = out.clifford_t_counts();
            assert_eq!(counts.mcx_large, 0, "{}", opt.name());
            assert_eq!(counts.toffoli, 0, "{}", opt.name());
            assert_eq!(counts.ch, 0, "{}", opt.name());
        }
    }

    #[test]
    fn all_optimizers_reduce_or_preserve_t_count() {
        let circuit = control_flow_circuit(4);
        let naive = qcirc::decompose::to_clifford_t(&circuit).unwrap();
        let baseline = naive.clifford_t_counts().t_count();
        for opt in registry() {
            let out = opt.optimize(&circuit);
            assert!(
                out.clifford_t_counts().t_count() <= baseline,
                "{} regressed T-count",
                opt.name()
            );
        }
    }

    #[test]
    fn toffoli_level_passes_beat_clifford_t_passes() {
        let circuit = control_flow_circuit(5);
        let peephole = AdjacentCancel
            .optimize(&circuit)
            .clifford_t_counts()
            .t_count();
        let mct = ToffoliCancel
            .optimize(&circuit)
            .clifford_t_counts()
            .t_count();
        let zx = GlobalResynth
            .optimize(&circuit)
            .clifford_t_counts()
            .t_count();
        assert!(mct < peephole, "mctExpand {mct} vs peephole {peephole}");
        assert!(zx <= mct, "global resynthesis {zx} vs mctExpand {mct}");
    }

    #[test]
    fn optimizers_preserve_semantics() {
        // Small circuit so the state-vector simulator covers the ancillas
        // introduced by decomposition.
        let circuit = Circuit::from_gates(vec![
            Gate::mcx(vec![0, 1, 2], 3),
            Gate::cnot(0, 4),
            Gate::mcx(vec![0, 1, 2], 3),
            Gate::x(2),
            Gate::toffoli(1, 2, 4),
        ]);
        for opt in registry() {
            let out = opt.optimize(&circuit);
            let qubits = out.num_qubits().max(circuit.num_qubits()).max(6);
            for basis in 0..(1u64 << 5) {
                let mut reference = StateVec::basis(qubits, basis).unwrap();
                reference.run(&circuit).unwrap();
                let mut optimized = StateVec::basis(qubits, basis).unwrap();
                optimized.run(&out).unwrap();
                assert!(
                    (reference.fidelity(&optimized) - 1.0).abs() < 1e-9,
                    "{} changed semantics on basis {basis}",
                    opt.name()
                );
            }
        }
    }

    #[test]
    fn adjacent_mcx_pairs_vanish_at_toffoli_level() {
        // The redundant pair of Figure 16.
        let circuit = Circuit::from_gates(vec![
            Gate::mcx(vec![0, 1, 2], 4),
            Gate::mcx(vec![0, 1, 2], 4),
        ]);
        let out = ToffoliCancel.optimize(&circuit);
        assert_eq!(out.clifford_t_counts().t_count(), 0);
        // The Clifford+T peephole cannot do this (Figure 17's asymmetry).
        let peep = AdjacentCancel.optimize(&circuit);
        assert!(peep.clifford_t_counts().t_count() > 0);
    }
}
