//! Tracing adapter for optimizer passes: wraps any [`CircuitOptimizer`]
//! so each `optimize` call records a span named after the pass, with
//! gate-count and T-count deltas as attributes. When no ambient trace is
//! installed (the common case) the wrapper adds one thread-local check
//! per call and records nothing.

use qcirc::Circuit;

use crate::passes::CircuitOptimizer;

/// A [`CircuitOptimizer`] that records a span per `optimize` call.
///
/// The span is named `qopt:<pass name>` and carries the input/output
/// gate counts and T-counts, so a trace shows exactly what each pass
/// bought — the attribution the optimizer-portfolio scheduler needs.
#[derive(Debug)]
pub struct TracedPass<O> {
    inner: O,
}

impl<O: CircuitOptimizer> TracedPass<O> {
    /// Wraps `inner`.
    pub fn new(inner: O) -> TracedPass<O> {
        TracedPass { inner }
    }

    /// The wrapped pass.
    pub fn inner(&self) -> &O {
        &self.inner
    }
}

impl<O: CircuitOptimizer> CircuitOptimizer for TracedPass<O> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn analogue_of(&self) -> &'static str {
        self.inner.analogue_of()
    }

    fn optimize(&self, circuit: &Circuit) -> Circuit {
        run_traced(&self.inner, circuit)
    }
}

/// Runs `pass` on `circuit` under a span carrying gate/T-count deltas.
///
/// This is the function the wrapper delegates to; callers holding a
/// `&dyn CircuitOptimizer` (the registry) can use it directly without
/// re-boxing.
pub fn run_traced(pass: &dyn CircuitOptimizer, circuit: &Circuit) -> Circuit {
    let mut span = spire_trace::span(span_name(pass.name()));
    let out = pass.optimize(circuit);
    if span.is_recording() {
        span.attr("gates_before", circuit.len() as u64);
        span.attr("gates_after", out.len() as u64);
        span.attr("t_before", circuit.t_count());
        span.attr("t_after", out.t_count());
    }
    out
}

/// Maps a pass name to a `'static` span stage name. Span stages must be
/// `&'static str`; the pass names are a closed set, so unknown names
/// (only possible for downstream custom passes) fall back to `"qopt"`.
fn span_name(pass: &str) -> &'static str {
    match pass {
        "adjacent-cancel" => "qopt:adjacent-cancel",
        "peephole" => "qopt:peephole",
        "phase-fold" => "qopt:phase-fold",
        "zx-graphlike" => "qopt:zx-graphlike",
        "feynman-tocliffordt" => "qopt:feynman-tocliffordt",
        "feynman-mctexpand" => "qopt:feynman-mctexpand",
        "global-resynth" => "qopt:global-resynth",
        "quartz-search" => "qopt:quartz-search",
        "queso-search" => "qopt:queso-search",
        _ => "qopt",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{registry, AdjacentCancel};
    use qcirc::Circuit;
    use std::sync::Arc;

    fn toy() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(qcirc::Gate::x(0));
        c.push(qcirc::Gate::x(0));
        c.push(qcirc::Gate::cnot(0, 1));
        c
    }

    #[test]
    fn traced_pass_matches_inner_pass() {
        let traced = TracedPass::new(AdjacentCancel);
        assert_eq!(traced.name(), "adjacent-cancel");
        let plain = AdjacentCancel.optimize(&toy());
        let wrapped = traced.optimize(&toy());
        assert_eq!(plain.len(), wrapped.len());
    }

    #[test]
    fn run_traced_records_delta_attrs_under_a_trace() {
        let ring = Arc::new(spire_trace::SpanRing::new(64));
        spire_trace::install(spire_trace::TraceCtx::new(Arc::clone(&ring), 1, true));
        let out = run_traced(&AdjacentCancel, &toy());
        let ctx = spire_trace::take().expect("trace installed");
        let records = ctx.records();
        let span = records
            .iter()
            .find(|r| r.stage() == "qopt:adjacent-cancel")
            .expect("pass span recorded");
        let attrs: Vec<(&str, spire_trace::AttrValue)> = span.attrs().collect();
        assert_eq!(attrs[0], ("gates_before", spire_trace::AttrValue::U64(3)));
        assert_eq!(
            attrs[1],
            ("gates_after", spire_trace::AttrValue::U64(out.len() as u64))
        );
    }

    #[test]
    fn every_registry_pass_has_a_static_span_name() {
        for pass in registry() {
            assert_ne!(
                span_name(pass.name()),
                "qopt",
                "unmapped pass {}",
                pass.name()
            );
        }
    }
}
