//! Commutation rules between gates, used by the cancellation passes to
//! move candidate gates next to each other.
//!
//! Two entry points decide the same relation:
//!
//! * [`commutes`] — the original syntactic rules over owned [`Gate`]s
//!   (`Vec::contains` scans). Kept as the specification; the property
//!   tests assert the fast kernel agrees with it on random gate pairs.
//! * [`commutes_views`] — the hot-path kernel over [`GateView`]s and
//!   precomputed [`Footprint`] masks: disjoint masks prove commutation in
//!   one AND; only mask collisions fall back to exact membership tests on
//!   the sorted control slices. Exactly equivalent to [`commutes`].

use qcirc::{Footprint, Gate, GateKind, GateView, Qubit};

/// Whether two gates commute under the (sound, incomplete) syntactic rules
/// this crate uses:
///
/// * two MCX gates commute when neither target appears in the other's
///   controls (a shared target is fine — both are X-type);
/// * a phase gate commutes with any gate that does not move its qubit
///   (i.e. whose target set does not include it); phases on controls
///   commute with the controlled gate;
/// * Hadamard-type gates commute only with gates touching disjoint qubits.
pub fn commutes(a: &Gate, b: &Gate) -> bool {
    match (a, b) {
        (
            Gate::Mcx {
                controls: ca,
                target: ta,
            },
            Gate::Mcx {
                controls: cb,
                target: tb,
            },
        ) => !cb.contains(ta) && !ca.contains(tb),
        (Gate::Mch { .. }, _) | (_, Gate::Mch { .. }) => {
            let h = if matches!(a, Gate::Mch { .. }) { a } else { b };
            let o = other_of(a, b, h);
            !h.overlaps(o)
        }
        (phase, other) if is_phase(phase) => phase_commutes(phase_qubit(phase), other),
        (other, phase) if is_phase(phase) => phase_commutes(phase_qubit(phase), other),
        _ => false,
    }
}

/// The footprint-mask commutation kernel: same relation as [`commutes`],
/// computed on gate views with their precomputed footprints.
///
/// Disjoint footprints prove commutation under every rule below, so the
/// mask test short-circuits the common case; overlapping masks fall back
/// to the exact rule on the sorted operand slices.
pub fn commutes_views(a: &GateView<'_>, fa: Footprint, b: &GateView<'_>, fb: Footprint) -> bool {
    // Any pair of gates over disjoint qubit sets commutes under every
    // syntactic rule; a disjoint mask proves disjoint qubit sets.
    if fa.disjoint(fb) {
        return true;
    }
    match (a.kind, b.kind) {
        (GateKind::Mcx, GateKind::Mcx) => {
            !control_contains(b, fb, a.target) && !control_contains(a, fa, b.target)
        }
        (GateKind::Mch, _) | (_, GateKind::Mch) => !overlaps_exact(a, b),
        (GateKind::Mcx, _phase) => a.target != b.target,
        (_phase, GateKind::Mcx) => b.target != a.target,
        // Diagonal gates always commute with each other.
        _ => true,
    }
}

/// Whether qubit `q` is one of `view`'s controls: mask fast-reject, then
/// binary search of the sorted control slice.
#[inline]
fn control_contains(view: &GateView<'_>, footprint: Footprint, q: Qubit) -> bool {
    footprint.may_contain(q) && view.target != q && view.controls.binary_search(&q).is_ok()
}

/// Exact qubit-set overlap of two views (called only on mask collision).
fn overlaps_exact(a: &GateView<'_>, b: &GateView<'_>) -> bool {
    let in_b = |q: Qubit| q == b.target || b.controls.binary_search(&q).is_ok();
    a.qubits().any(in_b)
}

fn other_of<'g>(a: &'g Gate, b: &'g Gate, h: &Gate) -> &'g Gate {
    if std::ptr::eq(a, h) {
        b
    } else {
        a
    }
}

fn is_phase(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::T(_) | Gate::Tdg(_) | Gate::S(_) | Gate::Sdg(_) | Gate::Z(_)
    )
}

fn phase_qubit(gate: &Gate) -> Qubit {
    match gate {
        Gate::T(q) | Gate::Tdg(q) | Gate::S(q) | Gate::Sdg(q) | Gate::Z(q) => *q,
        _ => unreachable!("caller checked is_phase"),
    }
}

fn phase_commutes(q: Qubit, other: &Gate) -> bool {
    match other {
        // Phases are diagonal: they commute with X-type gates unless the
        // X-type gate flips their qubit.
        Gate::Mcx { target, .. } => *target != q,
        Gate::Mch { .. } => !other.qubits().contains(&q),
        // Diagonal gates always commute with each other.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_mcx_commute() {
        assert!(commutes(&Gate::cnot(0, 1), &Gate::cnot(2, 3)));
    }

    #[test]
    fn shared_control_commutes() {
        assert!(commutes(&Gate::cnot(0, 1), &Gate::cnot(0, 2)));
        assert!(commutes(&Gate::toffoli(0, 1, 2), &Gate::toffoli(0, 1, 3)));
    }

    #[test]
    fn shared_target_commutes() {
        assert!(commutes(&Gate::cnot(0, 2), &Gate::cnot(1, 2)));
    }

    #[test]
    fn control_target_chain_does_not_commute() {
        assert!(!commutes(&Gate::cnot(0, 1), &Gate::cnot(1, 2)));
        assert!(!commutes(&Gate::toffoli(0, 1, 2), &Gate::cnot(2, 3)));
    }

    #[test]
    fn phase_commutes_on_control() {
        assert!(commutes(&Gate::T(0), &Gate::cnot(0, 1)));
        assert!(!commutes(&Gate::T(1), &Gate::cnot(0, 1)));
        assert!(commutes(&Gate::T(0), &Gate::S(0)));
    }

    #[test]
    fn hadamard_needs_disjointness() {
        assert!(!commutes(&Gate::h(0), &Gate::T(0)));
        assert!(!commutes(&Gate::h(1), &Gate::cnot(0, 1)));
        assert!(commutes(&Gate::h(2), &Gate::cnot(0, 1)));
    }

    /// Commutation claims are verified against the state-vector simulator.
    #[test]
    fn claimed_commutations_hold_semantically() {
        use qcirc::sim::StateVec;
        use qcirc::Circuit;
        let pairs = [
            (Gate::cnot(0, 1), Gate::cnot(0, 2)),
            (Gate::cnot(0, 2), Gate::cnot(1, 2)),
            (Gate::T(0), Gate::cnot(0, 1)),
            (Gate::toffoli(0, 1, 2), Gate::toffoli(1, 0, 3)),
            (Gate::S(1), Gate::toffoli(0, 1, 2)),
        ];
        for (a, b) in pairs {
            assert!(commutes(&a, &b), "{a} vs {b}");
            let ab: Circuit = vec![a.clone(), b.clone()].into_iter().collect();
            let ba: Circuit = vec![b.clone(), a.clone()].into_iter().collect();
            for basis in 0..16u64 {
                let mut s1 = StateVec::basis(4, basis).unwrap();
                s1.run(&ab).unwrap();
                let mut s2 = StateVec::basis(4, basis).unwrap();
                s2.run(&ba).unwrap();
                assert!(s1.approx_eq_exact(&s2, 1e-9), "{a};{b} on |{basis:b}⟩");
            }
        }
    }
}
