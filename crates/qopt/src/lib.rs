//! Baseline quantum circuit optimizers for the Spire evaluation.
//!
//! The paper (Section 8.3) compares Spire's program-level optimizations
//! against eight published circuit optimizers. Those tools are external
//! Python/OCaml/Haskell/C++ projects; this crate implements from-scratch
//! Rust analogues of the *mechanisms* the paper identifies as causally
//! decisive (Section 8.5):
//!
//! * peephole cancellation on Clifford+T gates ([`AdjacentCancel`],
//!   [`Peephole`]) — small windows, quadratic on control-flow circuits;
//! * rotation merging / phase folding ([`PhaseFoldLight`], [`ZxGraphLike`],
//!   [`CliffordTResynth`]) — unbounded merging but blind to Toffoli
//!   structure, quadratic with better constants;
//! * Toffoli-level cancellation ([`ToffoliCancel`], [`GlobalResynth`]) —
//!   sees the structure conditional flattening exploits and recovers
//!   asymptotically efficient circuits;
//! * timeout-bounded search ([`SearchOpt`]) — the Quartz/QUESO
//!   architecture, whose preprocessing dominates its T-count improvements.
//!
//! # Example
//!
//! ```
//! use qcirc::{Circuit, Gate};
//! use qopt::{CircuitOptimizer, ToffoliCancel};
//!
//! // Two identical MCX gates cancel once Toffoli structure is visible.
//! let circuit = Circuit::from_gates(vec![
//!     Gate::mcx(vec![0, 1, 2], 3),
//!     Gate::mcx(vec![0, 1, 2], 3),
//! ]);
//! let optimized = ToffoliCancel.optimize(&circuit);
//! assert_eq!(optimized.clifford_t_counts().t_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cancel;
mod certified;
mod commute;
mod passes;
mod phase_fold;
pub mod search;
mod traced;

pub use cancel::{cancel_fixpoint, cancel_with_window};
pub use certified::{certification_enabled, Certified};
pub use commute::{commutes, commutes_views};
pub use passes::{
    registry, registry_certified, AdjacentCancel, CircuitOptimizer, CliffordTResynth,
    GlobalResynth, Peephole, PhaseFoldLight, ToffoliCancel, ZxGraphLike,
};
pub use phase_fold::phase_fold;
pub use search::{SearchConfig, SearchOpt};
pub use traced::{run_traced, TracedPass};
