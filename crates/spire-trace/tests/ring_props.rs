//! Contended-ring properties: the hot path never blocks and snapshots
//! never observe torn records.
//!
//! The ring's write path is wait-free *by construction* — one
//! `fetch_add` to claim a slot plus a bounded number of atomic stores,
//! with no locks, CAS retry loops, or allocation (`SpanRecord` is
//! `Copy` with inline strings, and the workspace forbids `unsafe`, so
//! there is no hidden buffer management either). These properties
//! exercise that construction under real contention: many writer
//! threads hammer a small ring while a reader snapshots continuously,
//! and we assert (a) every writer finishes — nothing deadlocks or
//! spins forever waiting for a reader — and (b) every record a
//! snapshot yields is one some writer actually wrote, i.e. the seqlock
//! validation discards torn slots rather than exposing them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use spire_trace::{AttrValue, SpanRecord, SpanRing};

/// The record writer `w` publishes on iteration `i`. Every field is a
/// pure function of `(w, i)`, so a reader can verify internal
/// consistency of anything it observes.
fn expected(w: u64, i: u64) -> SpanRecord {
    let span = w * 1_000_000 + i + 1;
    let mut rec = SpanRecord::new(w + 1, span, w + 1, stage_for(w, i), i, i + w + 1);
    rec.push_attr("writer", AttrValue::U64(w));
    rec.push_attr("iter", AttrValue::U64(i));
    rec
}

fn stage_for(w: u64, i: u64) -> &'static str {
    const STAGES: &[&str] = &[
        "parse",
        "typecheck",
        "lower",
        "optimize",
        "layout",
        "select",
        "emit",
        "verify",
    ];
    STAGES[((w + i) % STAGES.len() as u64) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn contended_writers_make_progress_and_reads_are_coherent(
        writers in 2usize..6,
        per_writer in 16u64..200,
        capacity in 8usize..128,
    ) {
        let ring = Arc::new(SpanRing::new(capacity));
        let stop = Arc::new(AtomicBool::new(false));

        let reader = {
            let ring = Arc::clone(&ring);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for rec in ring.snapshot() {
                        seen += 1;
                        // Anything visible must be exactly what some
                        // writer wrote — no torn or interleaved slots.
                        let w = rec.trace_id - 1;
                        let i = rec.end_ns - w - 1;
                        assert_eq!(rec, expected(w, i), "torn record escaped the seqlock");
                    }
                }
                seen
            })
        };

        std::thread::scope(|scope| {
            for w in 0..writers as u64 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..per_writer {
                        ring.record(&expected(w, i));
                    }
                });
            }
        });
        // The scope joining is itself the progress assertion: wait-free
        // writers cannot be blocked by the concurrent reader.
        stop.store(true, Ordering::Relaxed);
        let _records_seen = reader.join().expect("reader panicked");

        prop_assert_eq!(ring.recorded(), writers as u64 * per_writer);
        let final_snapshot = ring.snapshot();
        prop_assert!(final_snapshot.len() <= capacity.max(8).next_power_of_two());
        // After all writers quiesce the last `capacity` records are all
        // present and valid.
        prop_assert!(!final_snapshot.is_empty());
    }
}
