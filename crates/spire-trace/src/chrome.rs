//! Chrome `trace_event` export.
//!
//! [`chrome_trace_json`] renders span records as "complete" (`ph:"X"`)
//! events in the JSON Object Format understood by `chrome://tracing`
//! and Perfetto. Each [`ChromeGroup`] becomes one named thread lane, so
//! a slow-log dump shows one lane per captured request.

use crate::{escape_json_into, AttrValue, SpanRecord};

/// One lane in the exported trace: a label (e.g. `"/compile #3 12ms"`)
/// and the spans to render under it.
#[derive(Clone, Debug)]
pub struct ChromeGroup {
    /// Lane label, shown as the thread name.
    pub label: String,
    /// Spans rendered in this lane.
    pub records: Vec<SpanRecord>,
}

/// Renders groups as Chrome `trace_event` JSON (object format, `ph:"X"`
/// complete events, microsecond timestamps). Load the result in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(groups: &[ChromeGroup]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (lane, group) in groups.iter().enumerate() {
        let tid = lane + 1;
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        ));
        escape_json_into(&group.label, &mut out);
        out.push_str("\"}}");
        for record in &group.records {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"spire\",\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\"",
                Escaped(record.stage()),
                Micros(record.start_ns),
                Micros(record.duration_ns()),
                record.trace_id,
                record.span_id,
                record.parent_id,
            ));
            for (key, value) in record.attrs() {
                out.push_str(&format!(",\"{}\":", Escaped(key)));
                match value {
                    AttrValue::U64(v) => out.push_str(&v.to_string()),
                    AttrValue::Label(l) => {
                        out.push_str(&format!("\"{}\"", Escaped(l.as_str())));
                    }
                }
            }
            out.push_str("}}");
        }
    }
    out.push_str("]}");
    out
}

/// Formats nanoseconds as fractional microseconds without going through
/// floating point (`1234` ns → `1.234`).
struct Micros(u64);

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let whole = self.0 / 1000;
        let frac = self.0 % 1000;
        if frac == 0 {
            write!(f, "{whole}")
        } else {
            write!(f, "{whole}.{frac:03}")
        }
    }
}

struct Escaped<'a>(&'a str);

impl std::fmt::Display for Escaped<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut buf = String::with_capacity(self.0.len());
        escape_json_into(self.0, &mut buf);
        f.write_str(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label;

    #[test]
    fn renders_metadata_and_complete_events() {
        let mut rec = SpanRecord::new(1, 2, 0, "parse", 1500, 4750);
        rec.push_attr("gates", AttrValue::U64(9));
        rec.push_attr("tier", label("cache"));
        let json = chrome_trace_json(&[ChromeGroup {
            label: "/compile \"a\"".into(),
            records: vec![rec],
        }]);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("/compile \\\"a\\\""));
        assert!(json.contains("\"name\":\"parse\""));
        assert!(json.contains("\"ts\":1.500,\"dur\":3.250"));
        assert!(json.contains("\"gates\":9"));
        assert!(json.contains("\"tier\":\"cache\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn empty_groups_render_empty_event_list() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
