//! Span-tree assembly and the canonical JSON form.
//!
//! [`build_tree`] turns a flat record set into a parent-linked forest.
//! Spans whose parent is not present in the set become roots — this is
//! deliberate: an inline `?trace=1` tree is built while the outer
//! request span is still open, so callers synthesize the missing
//! ancestors they know about and let everything else surface as a root
//! rather than disappear.
//!
//! [`SpanTree::to_json`] is the byte-stable serialization used by the
//! determinism tests: fields appear in a fixed order and
//! [`SpanTree::normalize`] zeroes every timestamp, so two traces of
//! identical requests from identically-seeded servers serialize to
//! identical bytes.

use crate::{escape_json_into, AttrValue, SpanRecord};

/// One span plus its children, ordered by `(start_ns, span_id)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// The span itself.
    pub record: SpanRecord,
    /// Child spans, in start order.
    pub children: Vec<SpanNode>,
}

/// A forest of spans belonging to one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanTree {
    /// The trace every span belongs to.
    pub trace_id: u64,
    /// Root spans (parent zero or parent not in the record set).
    pub roots: Vec<SpanNode>,
}

/// Assembles a tree from `records` (pre-filtering by `trace_id`).
/// Records are ordered by `(start_ns, span_id)` at every level, so the
/// result is deterministic regardless of input order.
pub fn build_tree(trace_id: u64, records: &[SpanRecord]) -> SpanTree {
    let mut sorted: Vec<SpanRecord> = records
        .iter()
        .filter(|r| r.trace_id == trace_id)
        .copied()
        .collect();
    sorted.sort_by_key(|r| (r.start_ns, r.span_id));
    let ids: Vec<u64> = sorted.iter().map(|r| r.span_id).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); sorted.len()];
    let mut is_child = vec![false; sorted.len()];
    for (i, record) in sorted.iter().enumerate() {
        if record.parent_id == 0 {
            continue;
        }
        if let Some(p) = ids
            .iter()
            .position(|&id| id == record.parent_id)
            .filter(|&p| p != i)
        {
            children[p].push(i);
            is_child[i] = true;
        }
    }
    // Emit depth-first; each index is consumed at most once, so a
    // malformed parent cycle drops its spans instead of recursing.
    fn emit(
        i: usize,
        sorted: &[SpanRecord],
        children: &[Vec<usize>],
        taken: &mut [bool],
    ) -> SpanNode {
        taken[i] = true;
        SpanNode {
            record: sorted[i],
            children: children[i]
                .iter()
                .filter(|&&c| !taken[c])
                .copied()
                .collect::<Vec<usize>>()
                .into_iter()
                .map(|c| emit(c, sorted, children, taken))
                .collect(),
        }
    }
    let mut taken = vec![false; sorted.len()];
    let mut roots = Vec::new();
    for i in 0..sorted.len() {
        if !is_child[i] && !taken[i] {
            roots.push(emit(i, &sorted, &children, &mut taken));
        }
    }
    SpanTree { trace_id, roots }
}

impl SpanNode {
    fn normalize(&mut self) {
        self.record.start_ns = 0;
        self.record.end_ns = 0;
        for child in &mut self.children {
            child.normalize();
        }
    }

    fn collect_stages<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.push(self.record.stage());
        for child in &self.children {
            child.collect_stages(out);
        }
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"stage\":\"");
        escape_json_into(self.record.stage(), out);
        out.push_str(&format!(
            "\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\",\"start_ns\":{},\"dur_ns\":{}",
            self.record.span_id,
            self.record.parent_id,
            self.record.start_ns,
            self.record.duration_ns()
        ));
        out.push_str(",\"attrs\":{");
        for (i, (key, value)) in self.record.attrs().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(key, out);
            out.push_str("\":");
            match value {
                AttrValue::U64(v) => out.push_str(&v.to_string()),
                AttrValue::Label(l) => {
                    out.push('"');
                    escape_json_into(l.as_str(), out);
                    out.push('"');
                }
            }
        }
        out.push_str("},\"children\":[");
        for (i, child) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            child.write_json(out);
        }
        out.push_str("]}");
    }
}

impl SpanTree {
    /// Zeroes every timestamp so trees from identical requests compare
    /// byte-identically regardless of wall-clock timings.
    pub fn normalize(&mut self) {
        for root in &mut self.roots {
            root.normalize();
        }
    }

    /// Every stage name in the tree, depth-first.
    pub fn stages(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for root in &self.roots {
            root.collect_stages(&mut out);
        }
        out
    }

    /// Total spans in the tree.
    pub fn span_count(&self) -> usize {
        self.stages().len()
    }

    /// The first node with the given stage name, depth-first.
    pub fn find(&self, stage: &str) -> Option<&SpanNode> {
        fn walk<'a>(node: &'a SpanNode, stage: &str) -> Option<&'a SpanNode> {
            if node.record.stage() == stage {
                return Some(node);
            }
            node.children.iter().find_map(|c| walk(c, stage))
        }
        self.roots.iter().find_map(|r| walk(r, stage))
    }

    /// The byte-stable JSON serialization (fixed field order):
    /// `{"trace_id":"…","spans":[{stage,span_id,parent_id,start_ns,dur_ns,attrs,children}…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"trace_id\":\"{:016x}\",\"spans\":[",
            self.trace_id
        ));
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            root.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{label, SpanRecord};

    fn rec(span: u64, parent: u64, stage: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord::new(1, span, parent, stage, start, end)
    }

    #[test]
    fn builds_nested_tree_in_start_order() {
        let records = vec![
            rec(30, 10, "select", 50, 60),
            rec(10, 0, "request", 0, 100),
            rec(20, 10, "parse", 5, 10),
        ];
        let tree = build_tree(1, &records);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.roots[0];
        assert_eq!(root.record.stage(), "request");
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].record.stage(), "parse");
        assert_eq!(root.children[1].record.stage(), "select");
        assert_eq!(tree.stages(), vec!["request", "parse", "select"]);
        assert_eq!(tree.span_count(), 3);
    }

    #[test]
    fn orphans_become_roots() {
        let records = vec![rec(5, 999, "parse", 10, 20), rec(6, 0, "queue", 0, 5)];
        let tree = build_tree(1, &records);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.roots[0].record.stage(), "queue");
        assert_eq!(tree.roots[1].record.stage(), "parse");
    }

    #[test]
    fn filters_other_traces() {
        let mut other = rec(9, 0, "noise", 0, 1);
        other.trace_id = 2;
        let tree = build_tree(1, &[rec(5, 0, "parse", 0, 1), other]);
        assert_eq!(tree.span_count(), 1);
    }

    #[test]
    fn json_is_stable_and_normalization_zeroes_times() {
        let mut a = rec(10, 0, "request", 3, 90);
        a.push_attr("gates", crate::AttrValue::U64(7));
        a.push_attr("tier", label("cache"));
        let records = vec![a, rec(11, 10, "parse", 5, 9)];
        let mut tree = build_tree(1, &records);
        let json = tree.to_json();
        assert!(json.starts_with("{\"trace_id\":\"0000000000000001\""));
        assert!(json.contains("\"stage\":\"request\""));
        assert!(json.contains("\"gates\":7"));
        assert!(json.contains("\"tier\":\"cache\""));
        assert!(json.contains("\"start_ns\":3"));
        tree.normalize();
        let normalized = tree.to_json();
        assert!(normalized.contains("\"start_ns\":0,\"dur_ns\":0"));
        // Same structure, different timings → identical after normalize.
        let mut tree2 = build_tree(
            1,
            &[
                {
                    let mut r = rec(10, 0, "request", 7, 40);
                    r.push_attr("gates", crate::AttrValue::U64(7));
                    r.push_attr("tier", label("cache"));
                    r
                },
                rec(11, 10, "parse", 9, 12),
            ],
        );
        tree2.normalize();
        assert_eq!(normalized, tree2.to_json());
    }

    #[test]
    fn find_locates_nested_stage() {
        let tree = build_tree(1, &[rec(1, 0, "request", 0, 10), rec(2, 1, "emit", 4, 6)]);
        assert!(tree.find("emit").is_some());
        assert!(tree.find("missing").is_none());
    }
}
