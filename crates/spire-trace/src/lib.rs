//! Dependency-free structured tracing and profiling for the Spire stack.
//!
//! The crate provides the four pieces every layer shares:
//!
//! * **Span records** ([`SpanRecord`]) — trace ID, span ID, parent link,
//!   monotonic start/end nanoseconds, a short static stage name, and a
//!   small typed attribute set (gate counts, cache-tier labels, …). All
//!   strings are stored inline in fixed-size buffers so a record is
//!   `Copy` and never allocates.
//! * **A wait-free ring** ([`SpanRing`]) — finished spans are published
//!   into a fixed-size lock-free ring buffer of seqlock slots. Writers
//!   never block and never allocate; readers take best-effort snapshots
//!   and discard torn slots.
//! * **Seeded IDs** ([`IdGen`]) — trace and span IDs come from a
//!   SplitMix64 stream, so a server booted with a fixed seed produces
//!   byte-identical (time-normalized) span trees for identical requests
//!   and tests can pin traces.
//! * **An ambient API** ([`TraceCtx`], [`install`], [`span`]) — a
//!   thread-local current trace lets deep layers (`tower`, `qopt`,
//!   `spire`) record stage spans without threading a context through
//!   every signature. When no trace is installed, [`span`] is a single
//!   thread-local check and records nothing.
//!
//! On top of the records sit two exporters: [`build_tree`] assembles a
//! parent-linked [`SpanTree`] (with a canonical JSON form used by the
//! `?trace=1` serving surface and the determinism tests), and
//! [`chrome_trace_json`] writes Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or Perfetto.
//!
//! The crate is intentionally `std`-only: it sits below `tower` in the
//! dependency graph so the whole compile pipeline can be instrumented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;

mod ambient;
mod chrome;
mod ring;
mod tree;

pub use ambient::{
    active_explicit, active_now_ns, active_records, active_root_id, active_trace_id,
    ambient_parent, install, is_active, span, take, SpanGuard, TraceCtx,
};
pub use chrome::{chrome_trace_json, ChromeGroup};
pub use ring::SpanRing;
pub use tree::{build_tree, SpanNode, SpanTree};

/// Maximum number of attributes a span can carry; extra attributes are
/// silently dropped.
pub const MAX_ATTRS: usize = 4;
/// Maximum stage-name length stored in a record (longer names truncate).
pub const MAX_STAGE_LEN: usize = 24;
/// Maximum attribute-key length stored in a record.
pub const MAX_KEY_LEN: usize = 16;
/// Maximum label-value length stored in a record.
pub const MAX_LABEL_LEN: usize = 8;

/// A short string stored inline (no heap), truncated at a char boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FixedStr<const N: usize> {
    bytes: [u8; N],
    len: u8,
}

impl<const N: usize> FixedStr<N> {
    /// Copies `s` into an inline buffer, truncating to at most `N` bytes
    /// on a character boundary.
    pub fn new(s: &str) -> FixedStr<N> {
        let mut end = s.len().min(N);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut bytes = [0u8; N];
        bytes[..end].copy_from_slice(&s.as_bytes()[..end]);
        FixedStr {
            bytes,
            len: end as u8,
        }
    }

    /// The stored string.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.bytes[..usize::from(self.len)]).unwrap_or("")
    }
}

impl<const N: usize> Default for FixedStr<N> {
    fn default() -> Self {
        FixedStr {
            bytes: [0u8; N],
            len: 0,
        }
    }
}

/// A typed span-attribute value: either a counter-like number or a short
/// label (cache tier, single-flight role, …).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttrValue {
    /// A numeric value (gate count, byte count, …).
    U64(u64),
    /// A short inline label, at most [`MAX_LABEL_LEN`] bytes.
    Label(FixedStr<MAX_LABEL_LEN>),
}

/// Builds a [`AttrValue::Label`] from a string, truncating as needed.
pub fn label(s: &str) -> AttrValue {
    AttrValue::Label(FixedStr::new(s))
}

/// One key/value attribute on a span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Attr {
    key: FixedStr<MAX_KEY_LEN>,
    value: AttrValue,
}

impl Attr {
    /// The attribute key.
    pub fn key(&self) -> &str {
        self.key.as_str()
    }

    /// The attribute value.
    pub fn value(&self) -> AttrValue {
        self.value
    }
}

/// A finished span: one timed stage of one traced request.
///
/// Records are plain `Copy` values with inline strings; `span_id` is
/// never zero and `parent_id == 0` marks a root span.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanRecord {
    /// The trace this span belongs to (never zero).
    pub trace_id: u64,
    /// This span's ID (never zero).
    pub span_id: u64,
    /// Parent span ID, or zero for a root span.
    pub parent_id: u64,
    /// Start time in nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End time in nanoseconds since the trace epoch.
    pub end_ns: u64,
    stage: FixedStr<MAX_STAGE_LEN>,
    attrs: [Attr; MAX_ATTRS],
    attr_count: u8,
}

impl SpanRecord {
    /// Builds a record with no attributes.
    pub fn new(
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        stage: &str,
        start_ns: u64,
        end_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id,
            start_ns,
            end_ns,
            stage: FixedStr::new(stage),
            attrs: [Attr {
                key: FixedStr::default(),
                value: AttrValue::U64(0),
            }; MAX_ATTRS],
            attr_count: 0,
        }
    }

    /// Appends an attribute; silently dropped past [`MAX_ATTRS`].
    pub fn push_attr(&mut self, key: &str, value: AttrValue) {
        let n = usize::from(self.attr_count);
        if n < MAX_ATTRS {
            self.attrs[n] = Attr {
                key: FixedStr::new(key),
                value,
            };
            self.attr_count = self.attr_count.wrapping_add(1);
        }
    }

    /// The stage name.
    pub fn stage(&self) -> &str {
        self.stage.as_str()
    }

    /// The attributes, in insertion order.
    pub fn attrs(&self) -> impl Iterator<Item = (&str, AttrValue)> {
        self.attrs[..usize::from(self.attr_count)]
            .iter()
            .map(|a| (a.key.as_str(), a.value))
    }

    /// Span duration in nanoseconds (saturating).
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A deterministic SplitMix64 ID stream.
///
/// Seeded generators yield the same ID sequence on every run, so a
/// server booted with a fixed seed assigns identical trace and span IDs
/// to identical request sequences — the determinism tests rely on this.
/// IDs are never zero (zero is the "no parent" sentinel).
#[derive(Debug)]
pub struct IdGen {
    state: Cell<u64>,
}

impl IdGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> IdGen {
        IdGen {
            state: Cell::new(seed),
        }
    }

    /// The next non-zero ID in the stream.
    pub fn next_id(&self) -> u64 {
        loop {
            let next = splitmix64(self.state.get());
            self.state
                .set(self.state.get().wrapping_add(0x9e37_79b9_7f4a_7c15));
            if next != 0 {
                return next;
            }
        }
    }
}

/// Derives the seed for the `n`-th trace from a base seed, so each trace
/// gets an independent but reproducible ID stream.
pub fn derive_seed(base: u64, n: u64) -> u64 {
    splitmix64(base ^ n.wrapping_mul(0xff51_afd7_ed55_8ccd))
}

fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_str_truncates_on_char_boundary() {
        let s: FixedStr<4> = FixedStr::new("héllo");
        // 'h' (1) + 'é' (2) = 3 bytes; adding 'l' fits exactly at 4.
        assert_eq!(s.as_str(), "hél");
        let t: FixedStr<8> = FixedStr::new("short");
        assert_eq!(t.as_str(), "short");
    }

    #[test]
    fn id_gen_is_deterministic_and_nonzero() {
        let a = IdGen::new(42);
        let b = IdGen::new(42);
        let ids_a: Vec<u64> = (0..64).map(|_| a.next_id()).collect();
        let ids_b: Vec<u64> = (0..64).map(|_| b.next_id()).collect();
        assert_eq!(ids_a, ids_b);
        assert!(ids_a.iter().all(|&id| id != 0));
        let c = IdGen::new(43);
        let ids_c: Vec<u64> = (0..64).map(|_| c.next_id()).collect();
        assert_ne!(ids_a, ids_c);
    }

    #[test]
    fn derive_seed_separates_traces() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_eq!(derive_seed(7, 3), derive_seed(7, 3));
    }

    #[test]
    fn record_attrs_cap_at_max() {
        let mut rec = SpanRecord::new(1, 2, 0, "stage", 0, 10);
        for i in 0..8u64 {
            rec.push_attr("k", AttrValue::U64(i));
        }
        assert_eq!(rec.attrs().count(), MAX_ATTRS);
        assert_eq!(rec.duration_ns(), 10);
    }

    #[test]
    fn label_truncates() {
        let AttrValue::Label(l) = label("a-very-long-tier-name") else {
            panic!("expected label");
        };
        assert_eq!(l.as_str().len(), MAX_LABEL_LEN);
    }
}
