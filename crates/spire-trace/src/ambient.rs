//! The ambient (thread-local) current trace.
//!
//! A [`TraceCtx`] is created per traced request, [`install`]ed on the
//! thread that executes the request, and [`take`]n back afterward so the
//! event loop can finish the trace (write-phase span, slow log). While a
//! context is installed, [`span`] opens an RAII stage span whose parent
//! is the innermost open span; deep layers call it unconditionally — when
//! no trace is installed it costs one thread-local check and records
//! nothing.

use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

use crate::ring::SpanRing;
use crate::{Attr, AttrValue, FixedStr, IdGen, SpanRecord, MAX_ATTRS};

thread_local! {
    static CURRENT: RefCell<Option<TraceCtx>> = const { RefCell::new(None) };
}

/// The per-request tracing context: trace ID, deterministic span-ID
/// stream, the epoch all span timestamps are relative to, and the ring
/// finished spans are published into.
///
/// The context carries a pre-allocated root span ID ([`TraceCtx::root_id`]);
/// phase spans recorded before/after the handler runs (read/parse, queue,
/// write) parent onto it, and the final `request` root record is written
/// when the response has been flushed.
#[derive(Debug)]
pub struct TraceCtx {
    trace_id: u64,
    root_id: u64,
    ids: IdGen,
    explicit: bool,
    epoch: Instant,
    ring: Arc<SpanRing>,
    parent: Cell<u64>,
}

impl TraceCtx {
    /// Creates a context whose epoch is "now".
    pub fn new(ring: Arc<SpanRing>, seed: u64, explicit: bool) -> TraceCtx {
        TraceCtx::with_epoch(ring, seed, explicit, Instant::now())
    }

    /// Creates a context with an explicit epoch (e.g. the instant the
    /// first request byte arrived), so spans recorded from different
    /// threads share a time base.
    pub fn with_epoch(ring: Arc<SpanRing>, seed: u64, explicit: bool, epoch: Instant) -> TraceCtx {
        let ids = IdGen::new(seed);
        let trace_id = ids.next_id();
        let root_id = ids.next_id();
        TraceCtx {
            trace_id,
            root_id,
            ids,
            explicit,
            epoch,
            ring,
            parent: Cell::new(root_id),
        }
    }

    /// The trace ID (never zero).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// The pre-allocated root span ID; the `request` root record itself
    /// is written by [`TraceCtx::record_root`] once the request is done.
    pub fn root_id(&self) -> u64 {
        self.root_id
    }

    /// Whether the client asked for the trace explicitly (`?trace=1`),
    /// as opposed to being picked up by sampling.
    pub fn is_explicit(&self) -> bool {
        self.explicit
    }

    /// Nanoseconds elapsed since the trace epoch.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// The ring this trace publishes into.
    pub fn ring(&self) -> &Arc<SpanRing> {
        &self.ring
    }

    /// Records an already-timed span under the root (used by the event
    /// loop for the read/parse, queue, and write phases, which do not
    /// run inside an installed context). Returns the new span's ID.
    pub fn record_phase(
        &self,
        stage: &str,
        start_ns: u64,
        end_ns: u64,
        attrs: &[(&str, AttrValue)],
    ) -> u64 {
        let span_id = self.ids.next_id();
        let mut rec = SpanRecord::new(
            self.trace_id,
            span_id,
            self.root_id,
            stage,
            start_ns,
            end_ns,
        );
        for (key, value) in attrs {
            rec.push_attr(key, *value);
        }
        self.ring.record(&rec);
        span_id
    }

    /// Writes the `request` root record spanning the whole request, from
    /// epoch (first byte) to `end_ns`.
    pub fn record_root(&self, end_ns: u64, attrs: &[(&str, AttrValue)]) {
        let mut rec = SpanRecord::new(self.trace_id, self.root_id, 0, "request", 0, end_ns);
        for (key, value) in attrs {
            rec.push_attr(key, *value);
        }
        self.ring.record(&rec);
    }

    /// Every span of this trace currently visible in the ring, sorted.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.ring.for_trace(self.trace_id)
    }
}

/// Installs `ctx` as the current trace for this thread, replacing (and
/// dropping) any previous one.
pub fn install(ctx: TraceCtx) {
    CURRENT.with(|current| {
        *current.borrow_mut() = Some(ctx);
    });
}

/// Removes and returns the current trace, if any.
pub fn take() -> Option<TraceCtx> {
    CURRENT.with(|current| current.borrow_mut().take())
}

/// Whether a trace is installed on this thread.
pub fn is_active() -> bool {
    CURRENT.with(|current| current.borrow().is_some())
}

/// The current trace ID, if a trace is installed.
pub fn active_trace_id() -> Option<u64> {
    CURRENT.with(|current| current.borrow().as_ref().map(TraceCtx::trace_id))
}

/// The current trace ID if the trace was requested explicitly
/// (`?trace=1`); `None` for sampled or absent traces.
pub fn active_explicit() -> Option<u64> {
    CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .filter(|ctx| ctx.is_explicit())
            .map(TraceCtx::trace_id)
    })
}

/// The current trace's pre-allocated root span ID, if one is installed.
pub fn active_root_id() -> Option<u64> {
    CURRENT.with(|current| current.borrow().as_ref().map(TraceCtx::root_id))
}

/// Nanoseconds since the current trace's epoch, if one is installed.
pub fn active_now_ns() -> Option<u64> {
    CURRENT.with(|current| current.borrow().as_ref().map(TraceCtx::now_ns))
}

/// The innermost open span's ID (the ambient parent), if a trace is
/// installed. Before any span opens this is the root span ID.
pub fn ambient_parent() -> Option<u64> {
    CURRENT.with(|current| current.borrow().as_ref().map(|ctx| ctx.parent.get()))
}

/// The current trace's visible records, paired with its trace ID.
pub fn active_records() -> Option<(u64, Vec<SpanRecord>)> {
    CURRENT.with(|current| {
        current
            .borrow()
            .as_ref()
            .map(|ctx| (ctx.trace_id, ctx.records()))
    })
}

struct LiveSpan {
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
    stage: &'static str,
    attrs: [Attr; MAX_ATTRS],
    attr_count: u8,
}

/// An RAII stage span. Created by [`span`]; the span is recorded into
/// the ring when the guard drops. Inert (a no-op) when no trace is
/// installed on the thread.
pub struct SpanGuard {
    live: Option<LiveSpan>,
}

impl SpanGuard {
    /// Whether this guard is actually recording (a trace is installed).
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }

    /// Attaches a numeric attribute (gate count, byte count, …).
    pub fn attr(&mut self, key: &'static str, value: u64) {
        self.push(key, AttrValue::U64(value));
    }

    /// Attaches a short label attribute (cache tier, flight role, …).
    pub fn attr_label(&mut self, key: &'static str, value: &str) {
        self.push(key, crate::label(value));
    }

    fn push(&mut self, key: &'static str, value: AttrValue) {
        if let Some(live) = self.live.as_mut() {
            let n = usize::from(live.attr_count);
            if n < MAX_ATTRS {
                live.attrs[n] = Attr {
                    key: FixedStr::new(key),
                    value,
                };
                live.attr_count += 1;
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        CURRENT.with(|current| {
            let borrow = current.borrow();
            let Some(ctx) = borrow.as_ref() else {
                // The context was taken while the span was open; the
                // span is lost, which is fine — guards are scoped
                // strictly inside the install/take window by callers.
                return;
            };
            ctx.parent.set(live.parent_id);
            let mut rec = SpanRecord::new(
                ctx.trace_id,
                live.span_id,
                live.parent_id,
                live.stage,
                live.start_ns,
                ctx.now_ns(),
            );
            for i in 0..usize::from(live.attr_count) {
                rec.push_attr(live.attrs[i].key(), live.attrs[i].value());
            }
            ctx.ring.record(&rec);
        });
    }
}

/// Opens a stage span under the current trace. The returned guard
/// records the span when dropped; nested calls nest spans. When no trace
/// is installed this is a single thread-local check returning an inert
/// guard.
pub fn span(stage: &'static str) -> SpanGuard {
    CURRENT.with(|current| {
        let borrow = current.borrow();
        let Some(ctx) = borrow.as_ref() else {
            return SpanGuard { live: None };
        };
        let span_id = ctx.ids.next_id();
        let parent_id = ctx.parent.replace(span_id);
        SpanGuard {
            live: Some(LiveSpan {
                span_id,
                parent_id,
                start_ns: ctx.now_ns(),
                stage,
                attrs: [Attr {
                    key: FixedStr::default(),
                    value: AttrValue::U64(0),
                }; MAX_ATTRS],
                attr_count: 0,
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(seed: u64) -> TraceCtx {
        TraceCtx::new(Arc::new(SpanRing::new(64)), seed, true)
    }

    #[test]
    fn span_without_trace_is_inert() {
        assert!(take().is_none());
        let mut guard = span("parse");
        assert!(!guard.is_recording());
        guard.attr("gates", 3);
        drop(guard);
        assert!(!is_active());
    }

    #[test]
    fn nested_spans_build_parent_links() {
        install(ctx(11));
        let outer = span("handler");
        let outer_id = ambient_parent().unwrap();
        {
            let mut inner = span("parse");
            inner.attr("bytes", 42);
        }
        drop(outer);
        let taken = take().expect("installed");
        let records = taken.records();
        assert_eq!(records.len(), 2);
        let parse = records.iter().find(|r| r.stage() == "parse").unwrap();
        let handler = records.iter().find(|r| r.stage() == "handler").unwrap();
        assert_eq!(parse.parent_id, handler.span_id);
        assert_eq!(handler.span_id, outer_id);
        assert_eq!(handler.parent_id, taken.root_id());
        assert_eq!(parse.attrs().next(), Some(("bytes", AttrValue::U64(42))));
    }

    #[test]
    fn phase_and_root_records_parent_onto_root() {
        let trace = ctx(5);
        let root = trace.root_id();
        trace.record_phase("queue", 10, 20, &[("depth", AttrValue::U64(2))]);
        trace.record_root(99, &[]);
        let records = trace.records();
        let queue = records.iter().find(|r| r.stage() == "queue").unwrap();
        let request = records.iter().find(|r| r.stage() == "request").unwrap();
        assert_eq!(queue.parent_id, root);
        assert_eq!(request.span_id, root);
        assert_eq!(request.parent_id, 0);
        assert_eq!(request.end_ns, 99);
    }

    #[test]
    fn take_returns_installed_context() {
        install(ctx(1));
        assert!(is_active());
        assert!(active_trace_id().is_some());
        assert!(active_explicit().is_some());
        assert!(active_now_ns().is_some());
        let taken = take().unwrap();
        assert!(taken.is_explicit());
        assert!(!is_active());
        assert!(active_explicit().is_none());
    }

    #[test]
    fn seeded_contexts_assign_identical_ids() {
        let a = ctx(77);
        let b = ctx(77);
        assert_eq!(a.trace_id(), b.trace_id());
        assert_eq!(a.root_id(), b.root_id());
        install(a);
        {
            let _outer = span("x");
            let _inner = span("y");
        }
        let a = take().unwrap();
        install(b);
        {
            let _outer = span("x");
            let _inner = span("y");
        }
        let b = take().unwrap();
        let ids_a: Vec<u64> = a.records().iter().map(|r| r.span_id).collect();
        let ids_b: Vec<u64> = b.records().iter().map(|r| r.span_id).collect();
        assert_eq!(ids_a, ids_b);
    }
}
