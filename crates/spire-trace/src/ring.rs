//! The wait-free span ring: a fixed-size buffer of seqlock slots.
//!
//! Writers claim a slot with one `fetch_add` on the head counter and
//! publish the record with plain atomic stores bracketed by an odd/even
//! sequence number — no locks, no allocation, no retry loop, so the hot
//! path is wait-free and safe to call from any thread (the workspace
//! forbids `unsafe`, so slots are arrays of `AtomicU64` words rather
//! than raw memory). Readers take best-effort snapshots: a slot whose
//! sequence number is odd (mid-write) or changed across the read is
//! discarded, as is any slot whose decoded contents fail validation.
//! Once the ring wraps, the oldest spans are overwritten — the ring is a
//! window over recent activity, not a complete log.

use std::sync::atomic::{fence, AtomicU64, Ordering};

use crate::{
    AttrValue, FixedStr, SpanRecord, MAX_ATTRS, MAX_KEY_LEN, MAX_LABEL_LEN, MAX_STAGE_LEN,
};

/// `u64` words per encoded record: 5 header fields, 2 metadata words,
/// 3 stage-name words, and 3 words (2 key + 1 value) per attribute.
const WORDS: usize = 5 + 2 + 3 + 3 * MAX_ATTRS;

struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-size lock-free ring buffer of finished spans.
///
/// See the [module docs](self) for the concurrency protocol.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl SpanRing {
    /// Creates a ring holding `capacity` spans (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(8).next_power_of_two();
        SpanRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            mask: (cap as u64) - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Publishes a finished span. Wait-free: one `fetch_add` to claim a
    /// slot plus a bounded number of atomic stores.
    pub fn record(&self, rec: &SpanRecord) {
        let index = (self.head.fetch_add(1, Ordering::Relaxed) & self.mask) as usize;
        let slot = &self.slots[index];
        slot.seq.fetch_add(1, Ordering::Relaxed);
        fence(Ordering::Release);
        let words = encode(rec);
        for (word, cell) in words.iter().zip(slot.words.iter()) {
            cell.store(*word, Ordering::Relaxed);
        }
        slot.seq.fetch_add(1, Ordering::Release);
    }

    /// A best-effort snapshot of every stable slot, in slot order.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 || before & 1 != 0 {
                continue;
            }
            let mut words = [0u64; WORDS];
            for (word, cell) in words.iter_mut().zip(slot.words.iter()) {
                *word = cell.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            let after = slot.seq.load(Ordering::Relaxed);
            if before != after {
                continue;
            }
            if let Some(rec) = decode(&words) {
                out.push(rec);
            }
        }
        out
    }

    /// The spans of one trace, sorted by `(start_ns, span_id)` so the
    /// order is deterministic even for zero-length spans.
    pub fn for_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut records: Vec<SpanRecord> = self
            .snapshot()
            .into_iter()
            .filter(|r| r.trace_id == trace_id)
            .collect();
        records.sort_by_key(|r| (r.start_ns, r.span_id));
        records
    }
}

fn pack_str<const N: usize>(s: &FixedStr<N>, out: &mut [u64]) {
    let bytes = s.as_str().as_bytes();
    for (i, word) in out.iter_mut().enumerate() {
        let mut buf = [0u8; 8];
        let lo = (i * 8).min(bytes.len());
        let hi = (i * 8 + 8).min(bytes.len());
        buf[..hi - lo].copy_from_slice(&bytes[lo..hi]);
        *word = u64::from_le_bytes(buf);
    }
}

fn unpack_str<const N: usize>(words: &[u64], len: usize) -> Option<FixedStr<N>> {
    if len > N {
        return None;
    }
    let mut bytes = [0u8; N];
    for (i, word) in words.iter().enumerate() {
        let chunk = word.to_le_bytes();
        let lo = i * 8;
        if lo >= N {
            break;
        }
        let hi = (lo + 8).min(N);
        bytes[lo..hi].copy_from_slice(&chunk[..hi - lo]);
    }
    std::str::from_utf8(&bytes[..len]).ok()?;
    Some(FixedStr::new(
        std::str::from_utf8(&bytes[..len]).unwrap_or(""),
    ))
}

const STAGE_WORDS: usize = MAX_STAGE_LEN / 8;
const KEY_WORDS: usize = MAX_KEY_LEN / 8;

fn encode(rec: &SpanRecord) -> [u64; WORDS] {
    let mut words = [0u64; WORDS];
    words[0] = rec.trace_id;
    words[1] = rec.span_id;
    words[2] = rec.parent_id;
    words[3] = rec.start_ns;
    words[4] = rec.end_ns;
    // Metadata word 5: stage length | attr count | per-attr label tags.
    let attrs: Vec<(&str, AttrValue)> = rec.attrs().collect();
    let mut meta = rec.stage().len() as u64;
    meta |= (attrs.len() as u64) << 8;
    for (i, (_, value)) in attrs.iter().enumerate() {
        if matches!(value, AttrValue::Label(_)) {
            meta |= 1 << (16 + i);
        }
    }
    words[5] = meta;
    // Metadata word 6: attr key lengths (one byte each) and, for label
    // attributes, label lengths (one byte each, upper half).
    let mut lens = 0u64;
    for (i, (key, value)) in attrs.iter().enumerate() {
        lens |= (key.len() as u64) << (8 * i);
        if let AttrValue::Label(l) = value {
            lens |= (l.as_str().len() as u64) << (32 + 8 * i);
        }
    }
    words[6] = lens;
    pack_str(
        &FixedStr::<MAX_STAGE_LEN>::new(rec.stage()),
        &mut words[7..7 + STAGE_WORDS],
    );
    for (i, (key, value)) in attrs.iter().enumerate() {
        let base = 7 + STAGE_WORDS + 3 * i;
        pack_str(
            &FixedStr::<MAX_KEY_LEN>::new(key),
            &mut words[base..base + KEY_WORDS],
        );
        words[base + KEY_WORDS] = match value {
            AttrValue::U64(v) => *v,
            AttrValue::Label(l) => {
                let mut packed = [0u64; 1];
                pack_str(l, &mut packed);
                packed[0]
            }
        };
    }
    words
}

fn decode(words: &[u64; WORDS]) -> Option<SpanRecord> {
    let trace_id = words[0];
    let span_id = words[1];
    if trace_id == 0 || span_id == 0 {
        return None;
    }
    let meta = words[5];
    let stage_len = (meta & 0xff) as usize;
    let attr_count = ((meta >> 8) & 0xff) as usize;
    if attr_count > MAX_ATTRS {
        return None;
    }
    let stage: FixedStr<MAX_STAGE_LEN> = unpack_str(&words[7..7 + STAGE_WORDS], stage_len)?;
    let mut rec = SpanRecord::new(
        trace_id,
        span_id,
        words[2],
        stage.as_str(),
        words[3],
        words[4],
    );
    let lens = words[6];
    for i in 0..attr_count {
        let base = 7 + STAGE_WORDS + 3 * i;
        let key_len = ((lens >> (8 * i)) & 0xff) as usize;
        let key: FixedStr<MAX_KEY_LEN> = unpack_str(&words[base..base + KEY_WORDS], key_len)?;
        let value = if meta & (1 << (16 + i)) != 0 {
            let label_len = ((lens >> (32 + 8 * i)) & 0xff) as usize;
            let label: FixedStr<MAX_LABEL_LEN> =
                unpack_str(&words[base + KEY_WORDS..base + KEY_WORDS + 1], label_len)?;
            AttrValue::Label(label)
        } else {
            AttrValue::U64(words[base + KEY_WORDS])
        };
        rec.push_attr(key.as_str(), value);
    }
    Some(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label;

    fn sample(trace: u64, span: u64) -> SpanRecord {
        let mut rec = SpanRecord::new(trace, span, 7, "typecheck", 100, 250);
        rec.push_attr("gates_before", AttrValue::U64(12));
        rec.push_attr("tier", label("disk"));
        rec
    }

    #[test]
    fn encode_decode_roundtrip() {
        let rec = sample(3, 9);
        let decoded = decode(&encode(&rec)).expect("valid record");
        assert_eq!(decoded, rec);
        assert_eq!(decoded.stage(), "typecheck");
        let attrs: Vec<(&str, AttrValue)> = decoded.attrs().collect();
        assert_eq!(attrs[0], ("gates_before", AttrValue::U64(12)));
        assert_eq!(attrs[1], ("tier", label("disk")));
    }

    #[test]
    fn ring_records_and_snapshots() {
        let ring = SpanRing::new(8);
        for i in 1..=5 {
            ring.record(&sample(1, i));
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(ring.recorded(), 5);
    }

    #[test]
    fn ring_wraps_and_keeps_newest() {
        let ring = SpanRing::new(8);
        for i in 1..=20 {
            ring.record(&sample(1, i));
        }
        let snap = ring.for_trace(1);
        assert_eq!(snap.len(), 8);
        assert!(snap.iter().all(|r| r.span_id > 12));
    }

    #[test]
    fn for_trace_filters_and_sorts() {
        let ring = SpanRing::new(16);
        let mut late = SpanRecord::new(2, 5, 0, "b", 900, 950);
        late.push_attr("n", AttrValue::U64(1));
        ring.record(&late);
        ring.record(&SpanRecord::new(2, 4, 0, "a", 100, 200));
        ring.record(&SpanRecord::new(9, 6, 0, "other", 0, 1));
        let spans = ring.for_trace(2);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage(), "a");
        assert_eq!(spans[1].stage(), "b");
    }

    #[test]
    fn empty_slots_are_skipped() {
        let ring = SpanRing::new(8);
        assert!(ring.snapshot().is_empty());
    }
}
