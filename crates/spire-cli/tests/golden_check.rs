//! Pins the machine-readable `spire check --benchmarks --json` output.
//!
//! The golden file is the contract the CI `check` job enforces: every
//! benchmark verifies clean, and the static T-complexity bounds printed
//! there only change when a reviewed commit changes them. Regenerate with
//!
//! ```text
//! cargo run --release -p spire-cli -- check --benchmarks --json \
//!     > tests/golden/check_benchmarks.json
//! ```

use std::process::Command;

#[test]
fn check_benchmarks_json_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_spire"))
        .args(["check", "--benchmarks", "--json"])
        .output()
        .expect("run spire check");
    assert!(
        out.status.success(),
        "spire check --benchmarks failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let actual = String::from_utf8(out.stdout).expect("utf-8 output");
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/check_benchmarks.json"
    );
    let golden = std::fs::read_to_string(golden_path).expect("read golden file");
    assert_eq!(
        actual.trim(),
        golden.trim(),
        "spire check --benchmarks --json drifted from tests/golden/check_benchmarks.json; \
         if the change is intentional, regenerate the golden file"
    );
}
