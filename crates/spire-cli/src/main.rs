//! `spire-cli`: command-line driver for the Spire reproduction.
//!
//! ```text
//! spire-cli compile <file.twr> --entry f --depth n [--opt spire|cf|cn|none] [--out circuit.qc]
//! spire-cli analyze <file.twr> --entry f --depth n
//! spire-cli check (<file.twr> --entry f --depth n [--opt ...] | --benchmarks) [--json]
//! spire-cli benchmarks
//! spire-cli experiments <fig2|fig12|fig15a|fig15b|table1|table2|table4|table5|fig24|appendix-a|all>
//! spire-cli report [--out-dir reports] [--threads n] [--quick] [--check]
//! spire-cli serve [--addr 127.0.0.1:0] [--threads n] [--cache-dir dir] [--cache-bytes n]
//!               [--compact-on-start] [--inject-disk-faults spec]
//!               [--trace-sample n] [--trace-seed n] [--slow-log n]
//! spire-cli loadtest [--addr host:port] [--workers n] [--seconds s] [--quick]
//!                  [--trace-out file]
//! spire-cli trace --addr host:port [--out trace.json]
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench_suite::experiments;
use bench_suite::report::normalize_timings;
use bench_suite::runner::{self, MatrixParams, RunSummary, RunnerEvent};
use qcirc::sim::{BasisState, SparseState, SparseState256};
use spire::{compile_source, CompileOptions, Compiled, Machine, OptConfig};
use tower::WordConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("benchmarks") => cmd_benchmarks(),
        Some("experiments") => cmd_experiments(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadtest") => cmd_loadtest(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  spire-cli compile <file.twr> --entry <fun> --depth <n> [--opt spire|cf|cn|none] [--out <file.qc>]
                    [--simulate] [--set <var>=<value> ...]
  spire-cli analyze <file.twr> --entry <fun> --depth <n>
  spire-cli check <file.twr> --entry <fun> --depth <n> [--opt spire|cf|cn|none] [--json]
  spire-cli check --benchmarks [--json]
  spire-cli benchmarks
  spire-cli experiments <fig2|fig12|fig15a|fig15b|table1|table2|table4|table5|fig24|appendix-a|all>
  spire-cli report [--out-dir <dir>] [--threads <n>] [--quick] [--check]
  spire-cli serve [--addr <host:port>] [--threads <n>] [--backlog <n>] [--cache-dir <dir>]
                  [--cache-bytes <n[k|m|g]>] [--compact-on-start]
                  [--inject-disk-faults <none|crash=BYTES|KIND:all|KIND:nth=N|KIND:rate=R,seed=S>]
                  [--trace-sample <n>] [--trace-seed <n>] [--slow-log <n>]
  spire-cli loadtest [--addr <host:port>] [--workers <n>] [--seconds <s>]
                     [--depth <n>] [--quick] [--out-dir <dir>] [--trace-out <file>]
  spire-cli trace --addr <host:port> [--out <trace.json>]

  --simulate runs the compiled circuit (sparse backend for layouts of up
  to 64 qubits, wide-keyed sparse up to 256, classical otherwise) and
  prints every live variable; --set initializes an input register first.

  check runs the spire-verify static analyses (gate-stream
  well-formedness, ancilla discipline, static T-complexity bounds; see
  docs/ANALYSIS.md) over the compiled program and prints structured
  diagnostics with stable `verify/...` codes. --benchmarks checks every
  paper benchmark instead of a file; --json emits the machine-readable
  report (the format CI pins a golden copy of). Exits nonzero on any
  error-severity diagnostic.

  serve runs the compile-and-estimate HTTP service (POST /compile,
  POST /simulate, POST /check, GET /benchmarks, GET /metrics,
  GET /healthz) until the
  process is killed; port 0 picks an ephemeral port, printed on stdout.
  --cache-dir enables the persistent compile cache: /compile results are
  stored in an append-only content-addressed log there, so a restarted
  server answers previously-compiled requests from disk.
  --cache-bytes caps resident memory for the in-memory caches
  (second-chance eviction; suffixes k/m/g are binary multiples).
  --compact-on-start rewrites the on-disk log to live entries only
  before serving. --inject-disk-faults wires a seeded fault schedule
  into the disk tier for chaos testing (KIND is eio, enospc, or torn);
  the server degrades to memory-only behind a circuit breaker instead
  of failing requests. See docs/SERVING.md and docs/ROBUSTNESS.md.
  --trace-sample N traces every Nth request (0 disables sampling;
  ?trace=1 always traces), --trace-seed pins the deterministic trace/span
  ID streams, --slow-log sets how many slowest traced requests are kept
  for GET /debug/slow. See docs/OBSERVABILITY.md.

  loadtest drives a closed-loop request mix over the benchmark programs
  against --addr (or an in-process server when omitted), then sweeps the
  same mix open-loop at fixed fractions of the measured capacity, then
  measures the traced-vs-untraced throughput delta, and writes the
  BENCH_serve.json perf trajectory (throughput, latency percentiles
  incl. the latency-under-load curve, cache/single-flight rates, tracing
  overhead). --quick is the CI smoke configuration. --trace-out saves
  the server's slow log as Chrome trace_event JSON afterwards.

  trace fetches the slow log of a running server (GET
  /debug/slow?format=chrome) and writes it as Chrome trace_event JSON
  (default trace.json), loadable in chrome://tracing or Perfetto.

  report regenerates every paper table/figure artifact in parallel
  (Markdown + JSON under --out-dir, default `reports/`). --check
  regenerates and diffs the Markdown against the committed snapshot in
  `reports/` (timing cells normalized) instead of overwriting it, and
  fails on drift. --quick runs a reduced matrix for smoke testing.";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a byte-size argument: a plain count, or a count with a `k`,
/// `m`, or `g` suffix (binary multiples, case-insensitive).
fn parse_byte_size(text: &str) -> Option<u64> {
    let text = text.trim();
    let (digits, multiplier) = match text.chars().last()? {
        'k' | 'K' => (&text[..text.len() - 1], 1u64 << 10),
        'm' | 'M' => (&text[..text.len() - 1], 1u64 << 20),
        'g' | 'G' => (&text[..text.len() - 1], 1u64 << 30),
        _ => (text, 1),
    };
    let count: u64 = digits.parse().ok()?;
    count.checked_mul(multiplier).filter(|&n| n > 0)
}

fn parse_opt(name: &str) -> Result<OptConfig, String> {
    Ok(match name {
        "spire" => OptConfig::spire(),
        "cf" => OptConfig::flattening_only(),
        "cn" => OptConfig::narrowing_only(),
        "none" => OptConfig::none(),
        other => return Err(format!("unknown optimization config `{other}`")),
    })
}

fn load(args: &[String]) -> Result<(String, String, i64, OptConfig), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing input file")?;
    let source = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let entry = flag(args, "--entry").ok_or("missing --entry")?;
    let depth: i64 = flag(args, "--depth")
        .ok_or("missing --depth")?
        .parse()
        .map_err(|e| format!("bad --depth: {e}"))?;
    let opt = parse_opt(&flag(args, "--opt").unwrap_or_else(|| "spire".into()))?;
    Ok((source, entry, depth, opt))
}

/// Render a compile error with its source location when one can be
/// recovered: code, `line:col`, the offending line, and a caret under the
/// span.
fn render_compile_error(source: &str, err: &spire::SpireError) -> String {
    let Some(span) = err.locate(source) else {
        return format!("{err} [{}]", err.code());
    };
    let (line, col) = span.line_col(source);
    let text = source.lines().nth(line - 1).unwrap_or("");
    let span_chars = source[span.start.min(source.len())..span.end.min(source.len())]
        .chars()
        .count();
    let room = text.chars().count().saturating_sub(col - 1);
    let caret = "^".repeat(span_chars.min(room).max(1));
    format!(
        "{err} [{}]\n --> {line}:{col} (bytes {}..{})\n  | {text}\n  | {}{caret}",
        err.code(),
        span.start,
        span.end,
        " ".repeat(col - 1),
    )
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (source, entry, depth, opt) = load(args)?;
    let compiled = compile_source(
        &source,
        &entry,
        depth,
        WordConfig::paper_default(),
        &CompileOptions::with_opt(opt),
    )
    .map_err(|e| render_compile_error(&source, &e))?;
    let circuit = compiled.emit();
    let qc = qcirc::qcformat::write(&circuit);
    match flag(args, "--out") {
        Some(path) => {
            fs::write(&path, qc).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {} gates ({} qubits) to {path}",
                circuit.len(),
                circuit.num_qubits()
            );
        }
        None => print!("{qc}"),
    }
    if args.iter().any(|a| a == "--simulate") {
        cmd_simulate(&compiled, args)?;
    }
    Ok(())
}

/// Collect repeated `--set name=value` flags.
fn input_sets(args: &[String]) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let kv = args
                .get(i + 1)
                .ok_or("missing argument to --set (expected name=value)")?;
            let (name, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad --set `{kv}`, expected name=value"))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("bad value in --set `{kv}`: {e}"))?;
            out.push((name.to_string(), value));
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Execute the compiled circuit and print the live variables. Layouts of
/// up to 64 qubits use the sparse backend and up to 256 its wide-keyed
/// variant (full gate set, including Hadamard statements); larger
/// layouts fall back to the classical simulator, which Tower's
/// Hadamard-free benchmarks permute exactly.
fn cmd_simulate(compiled: &Compiled, args: &[String]) -> Result<(), String> {
    let sets = input_sets(args)?;
    let total = compiled.layout.total_qubits;
    if total <= 64 {
        let machine = simulate_on::<SparseState>(compiled, &sets)?;
        println!(
            "simulated {total} qubits on the sparse backend ({} nonzero amplitude(s))",
            machine.state().support()
        );
        print_live_vars(compiled, |name| machine.var(name).ok());
    } else if total <= 256 {
        let machine = simulate_on::<SparseState256>(compiled, &sets)?;
        println!(
            "simulated {total} qubits on the sparse-wide backend ({} nonzero amplitude(s))",
            machine.state().support()
        );
        print_live_vars(compiled, |name| machine.var(name).ok());
    } else {
        let machine = simulate_on::<BasisState>(compiled, &sets)?;
        println!("simulated {total} qubits on the classical backend");
        print_live_vars(compiled, |name| machine.var(name).ok());
    }
    Ok(())
}

fn simulate_on<S: qcirc::sim::Simulator>(
    compiled: &Compiled,
    sets: &[(String, u64)],
) -> Result<Machine<S>, String> {
    let mut machine: Machine<S> = Machine::with_backend(&compiled.layout);
    for (name, value) in sets {
        machine.set_var(name, *value).map_err(|e| e.to_string())?;
    }
    machine.run(&compiled.emit()).map_err(|e| e.to_string())?;
    Ok(machine)
}

fn print_live_vars(compiled: &Compiled, read: impl Fn(&str) -> Option<u64>) {
    let mut seen = std::collections::HashSet::new();
    for (var, ty) in &compiled.types.final_context {
        let name = var.as_str();
        if name.contains('%') {
            continue; // optimizer temporary
        }
        if !seen.insert(name) {
            continue; // re-declarations share one register; print it once
        }
        match read(name) {
            Some(value) => println!("  {name}: {ty} = {value}"),
            None => println!("  {name}: {ty} = (superposed)"),
        }
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (source, entry, depth, _) = load(args)?;
    println!("cost model analysis of `{entry}` at depth {depth}:");
    for opt in [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ] {
        let compiled = compile_source(
            &source,
            &entry,
            depth,
            WordConfig::paper_default(),
            &CompileOptions::with_opt(opt),
        )
        .map_err(|e| e.to_string())?;
        let hist = compiled.histogram();
        println!(
            "  {:<9} MCX-complexity {:>10}   T-complexity {:>12}   max controls {:>2}   qubits {:>5}",
            opt.label(),
            hist.mcx_complexity(),
            hist.t_complexity(),
            hist.max_controls(),
            compiled.qubits_after_decomposition(),
        );
    }
    Ok(())
}

/// `check`: the spire-verify static analyses as a diagnostics surface
/// (see `docs/ANALYSIS.md`). Exits nonzero on error-severity diagnostics.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    if args.iter().any(|a| a == "--benchmarks") {
        return check_benchmarks(json);
    }
    let (source, entry, depth, opt) = load(args)?;
    let report = spire::check_source(
        &source,
        &entry,
        depth,
        WordConfig::paper_default(),
        &CompileOptions::with_opt(opt),
    )
    .map_err(|e| render_compile_error(&source, &e))?;
    if json {
        println!("{}", report.to_json());
    } else {
        print_report(&format!("`{entry}` at depth {depth}"), &report);
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "check failed with {} error(s)",
            report.error_count()
        ))
    }
}

/// Check every paper benchmark under the full Spire configuration. The
/// `--json` output is deterministic (no timings) and pinned as a golden
/// file by the CI `check` job.
fn check_benchmarks(json: bool) -> Result<(), String> {
    let mut rows = Vec::new();
    let mut dirty = 0usize;
    for bench in bench_suite::programs::all_benchmarks() {
        let depth = if bench.constant { 0 } else { 3 };
        let report = spire::check_source(
            &bench.source,
            bench.entry,
            depth,
            WordConfig::paper_default(),
            &CompileOptions::spire(),
        )
        .map_err(|e| format!("checking {}: {e}", bench.name))?;
        if !report.is_clean() {
            dirty += 1;
        }
        if json {
            rows.push(
                qcirc::json::Json::obj()
                    .field("name", bench.name)
                    .field("entry", bench.entry)
                    .field("depth", depth)
                    .field("report", report.to_json())
                    .build(),
            );
        } else {
            print_report(&format!("{} at depth {depth}", bench.name), &report);
        }
    }
    if json {
        let doc = qcirc::json::Json::obj()
            .field("clean", dirty == 0)
            .field("benchmarks", rows)
            .build();
        println!("{doc}");
    }
    if dirty == 0 {
        Ok(())
    } else {
        Err(format!("check failed on {dirty} benchmark(s)"))
    }
}

/// Human-readable rendering of one verification report.
fn print_report(subject: &str, report: &spire::spire_verify::Report) {
    let verdict = if report.is_clean() { "clean" } else { "FAILED" };
    println!(
        "check {subject}: {verdict} ({} diagnostic(s), {} function bound(s))",
        report.diagnostics.len(),
        report.functions.len()
    );
    for diag in &report.diagnostics {
        println!("  {diag}");
    }
    for bounds in &report.functions {
        println!(
            "  fn {:<16} T in [{}, {}]  actual {}  {}",
            bounds.name,
            bounds.min,
            bounds.max,
            bounds.actual,
            if bounds.holds() { "ok" } else { "VIOLATED" }
        );
    }
}

fn cmd_benchmarks() -> Result<(), String> {
    println!("benchmark programs (paper Table 1):");
    for bench in bench_suite::programs::all_benchmarks() {
        println!(
            "  {:<8} {:<14} entry `{}`{}",
            bench.group,
            bench.name,
            bench.entry,
            if bench.constant {
                "  (constant size)"
            } else {
                ""
            }
        );
    }
    Ok(())
}

/// `report`: the parallel artifact pipeline (see `docs/EXPERIMENTS.md`).
fn cmd_report(args: &[String]) -> Result<(), String> {
    let out_dir = PathBuf::from(flag(args, "--out-dir").unwrap_or_else(|| "reports".into()));
    let check = args.iter().any(|a| a == "--check");
    let quick = args.iter().any(|a| a == "--quick");
    let threads = match flag(args, "--threads") {
        Some(n) => n.parse().map_err(|e| format!("bad --threads: {e}"))?,
        None => runner::default_threads(),
    };
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    let params = if quick {
        MatrixParams::quick()
    } else {
        MatrixParams::paper()
    };

    let summary = runner::run_all(&params, threads, &|event| match event {
        RunnerEvent::WarmStart { jobs, threads } => {
            println!("warming compile cache: {jobs} configurations on {threads} threads");
        }
        RunnerEvent::WarmDone { jobs, wall } => {
            println!(
                "warmed {jobs} configurations in {:.3} s",
                wall.as_secs_f64()
            );
        }
        RunnerEvent::ArtifactDone {
            id,
            wall,
            done,
            total,
        } => {
            println!("[{done}/{total}] {id} in {:.3} s", wall.as_secs_f64());
        }
    });
    println!(
        "pipeline: {} artifacts in {:.3} s on {} threads (peak parallelism {}), cache {}",
        summary.artifacts.len(),
        summary.wall.as_secs_f64(),
        summary.threads,
        summary.parallelism.peak,
        summary.cache,
    );

    // The snapshot being checked against is never overwritten: a plain
    // `report --check` is a pure read-only verification, whatever
    // spelling of the snapshot path --out-dir uses.
    let snapshot_dir = Path::new("reports");
    let write = !check || !same_dir(&out_dir, snapshot_dir);
    if write {
        write_reports(&out_dir, &summary)?;
        println!(
            "wrote {} to {}",
            artifact_file_list(&summary),
            out_dir.display()
        );
    }
    if check {
        check_reports(snapshot_dir, &summary)?;
        println!(
            "report check passed: {} artifacts match {}",
            summary.artifacts.len(),
            snapshot_dir.display()
        );
    }

    // The optimizer perf trajectory rides along with every report run:
    // per-pass wall times and gate throughput, with the pinned
    // pre-refactor baseline embedded for comparison (quick mode measures
    // the reduced matrix). Written to the workspace root (resolved from
    // the build-time manifest path, same as the `optimizer_time` bench,
    // so both call sites agree wherever the command is run from); never
    // drift-checked — it is all timings.
    let repo_root = workspace_root();
    let opt_report = bench_suite::opt_bench::run(quick);
    let path = bench_suite::opt_bench::write_json(&opt_report, repo_root)
        .map_err(|e| format!("writing BENCH_optimizer.json: {e}"))?;
    match opt_report.headline_speedup() {
        Some(speedup) => println!(
            "wrote {} ({} passes; {} at depth {}: {speedup:.1}x vs {} baseline)",
            path.display(),
            opt_report.entries.len(),
            bench_suite::opt_bench::HEADLINE.2,
            bench_suite::opt_bench::HEADLINE.1,
            bench_suite::opt_bench::BASELINE_COMMIT,
        ),
        None => println!(
            "wrote {} ({} passes, quick matrix)",
            path.display(),
            opt_report.entries.len()
        ),
    }
    Ok(())
}

/// Whether two directory paths name the same location, robust to
/// spelling differences (`reports`, `./reports`, `reports/`, absolute).
/// Falls back to lexical normalization when a path does not exist yet.
fn same_dir(a: &Path, b: &Path) -> bool {
    match (fs::canonicalize(a), fs::canonicalize(b)) {
        (Ok(a), Ok(b)) => a == b,
        _ => {
            let normalize = |p: &Path| -> PathBuf {
                let absolute = std::env::current_dir().unwrap_or_default().join(p);
                let mut out = PathBuf::new();
                for component in absolute.components() {
                    match component {
                        std::path::Component::CurDir => {}
                        std::path::Component::ParentDir => {
                            out.pop();
                        }
                        other => out.push(other),
                    }
                }
                out
            };
            normalize(a) == normalize(b)
        }
    }
}

fn artifact_file_list(summary: &RunSummary) -> String {
    format!(
        "{} artifacts (Markdown + JSON), README.md, summary.json",
        summary.artifacts.len()
    )
}

/// Write every artifact as `<id>.md` and `<id>.json`, plus the index
/// (`README.md`) and the machine-readable run metadata (`summary.json`).
fn write_reports(dir: &Path, summary: &RunSummary) -> Result<(), String> {
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let write = |name: String, content: String| -> Result<(), String> {
        let path = dir.join(name);
        fs::write(&path, content).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    for result in &summary.artifacts {
        write(format!("{}.md", result.spec.id), artifact_markdown(result))?;
        write(
            format!("{}.json", result.spec.id),
            format!("{}\n", result.artifact.to_json()),
        )?;
    }
    write("README.md".into(), index_markdown(summary))?;
    write("summary.json".into(), summary_json(summary))?;
    Ok(())
}

/// The Markdown document for one artifact (this is what the drift check
/// compares, after timing normalization).
fn artifact_markdown(result: &bench_suite::runner::ArtifactResult) -> String {
    format!(
        "<!-- generated by `spire-cli report`; do not edit (see docs/EXPERIMENTS.md) -->\n\n{}",
        result.artifact.to_markdown()
    )
}

/// The `reports/README.md` index: one row per artifact. Deliberately free
/// of timings and machine details so it is as stable as the artifacts.
fn index_markdown(summary: &RunSummary) -> String {
    let mut out = String::from(
        "<!-- generated by `spire-cli report`; do not edit (see docs/EXPERIMENTS.md) -->\n\n\
         # Paper artifacts\n\n\
         Every table and figure of the evaluation, regenerated by\n\
         `cargo run --release -p spire-cli -- report`. The experiment index in\n\
         [docs/EXPERIMENTS.md](../docs/EXPERIMENTS.md) maps each artifact to the paper and to\n\
         the code that produces it.\n\n\
         | artifact | reproduces | generator | files |\n|---|---|---|---|\n",
    );
    for result in &summary.artifacts {
        let id = result.spec.id;
        out.push_str(&format!(
            "| {} | {} | `{}` | [{id}.md]({id}.md), [{id}.json]({id}.json) |\n",
            result.artifact.title(),
            result.spec.paper_ref,
            result.spec.function,
        ));
    }
    out
}

/// Machine-readable run metadata: timings, cache statistics, and the gate
/// histograms of every benchmark at a reference depth (the `qcirc`
/// histogram serialization). Not drift-checked — it contains timings.
fn summary_json(summary: &RunSummary) -> String {
    use bench_suite::report::json_string;
    let artifacts: Vec<String> = summary
        .artifacts
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":{},\"paper_ref\":{},\"function\":{},\"seconds\":{:.6}}}",
                json_string(r.spec.id),
                json_string(r.spec.paper_ref),
                json_string(r.spec.function),
                r.wall.as_secs_f64(),
            )
        })
        .collect();
    let reference_depth = 4;
    let histograms: Vec<String> = bench_suite::programs::all_benchmarks()
        .iter()
        .map(|bench| {
            let depth = if bench.constant { 0 } else { reference_depth };
            let compiled = |options: &CompileOptions| {
                spire::compile_source_cached(
                    &bench.source,
                    bench.entry,
                    depth,
                    WordConfig::paper_default(),
                    options,
                )
            };
            let hist = |options: &CompileOptions| {
                compiled(options).map_or_else(|_| "null".into(), |c| c.histogram().to_json())
            };
            // The fully decomposed Clifford+T gate counts of the
            // Spire-optimized circuit (Tables 5/6 currency).
            let clifford_t = compiled(&CompileOptions::spire())
                .ok()
                .and_then(|c| qcirc::decompose::to_clifford_t(&c.emit()).ok()).map_or_else(|| "null".into(), |circuit| circuit.clifford_t_counts().to_json());
            format!(
                "{{\"name\":{},\"group\":{},\"entry\":{},\"depth\":{depth},\"baseline\":{},\"spire\":{},\"spire_clifford_t\":{}}}",
                json_string(bench.name),
                json_string(bench.group),
                json_string(bench.entry),
                hist(&CompileOptions::baseline()),
                hist(&CompileOptions::spire()),
                clifford_t,
            )
        })
        .collect();
    format!(
        "{{\"threads\":{},\"warm_jobs\":{},\"warm_seconds\":{:.6},\"wall_seconds\":{:.6},\
         \"peak_parallelism\":{},\"cache\":{{\"hits\":{},\"misses\":{},\"entries\":{}}},\
         \"artifacts\":[{}],\"benchmark_histograms\":[{}]}}\n",
        summary.threads,
        summary.warm_jobs,
        summary.warm_wall.as_secs_f64(),
        summary.wall.as_secs_f64(),
        summary.parallelism.peak,
        summary.cache.hits,
        summary.cache.misses,
        summary.cache.entries,
        artifacts.join(","),
        histograms.join(","),
    )
}

/// Compare the regenerated Markdown against the committed snapshot,
/// normalizing wall-clock timing cells on both sides.
fn check_reports(snapshot_dir: &Path, summary: &RunSummary) -> Result<(), String> {
    let mut drifted = Vec::new();
    for result in &summary.artifacts {
        let name = format!("{}.md", result.spec.id);
        let path = snapshot_dir.join(&name);
        let committed = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                drifted.push(format!("{name}: unreadable ({e})"));
                continue;
            }
        };
        let fresh = artifact_markdown(result);
        if normalize_timings(&committed) != normalize_timings(&fresh) {
            drifted.push(format!("{name}: content differs"));
        }
    }
    let index_path = snapshot_dir.join("README.md");
    match fs::read_to_string(&index_path) {
        Ok(committed) if committed == index_markdown(summary) => {}
        Ok(_) => drifted.push("README.md: content differs".into()),
        Err(e) => drifted.push(format!("README.md: unreadable ({e})")),
    }
    if drifted.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "report drift against {} in {} file(s):\n  {}\n\
             regenerate with `cargo run --release -p spire-cli -- report` and commit the result",
            snapshot_dir.display(),
            drifted.len(),
            drifted.join("\n  ")
        ))
    }
}

/// `serve`: run the compile-and-estimate service until killed.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = spire_serve::ServerConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:8577".into()),
        ..spire_serve::ServerConfig::default()
    };
    if let Some(threads) = flag(args, "--threads") {
        config.threads = threads
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("bad --threads: expected a positive integer")?;
    }
    if let Some(backlog) = flag(args, "--backlog") {
        config.backlog = backlog
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("bad --backlog: expected a positive integer")?;
    }
    if let Some(dir) = flag(args, "--cache-dir") {
        config.cache_dir = Some(PathBuf::from(dir));
    }
    if let Some(bytes) = flag(args, "--cache-bytes") {
        config.cache_bytes = Some(
            parse_byte_size(&bytes)
                .ok_or("bad --cache-bytes: expected a byte count like 16777216, 64k, or 256m")?,
        );
    }
    if args.iter().any(|a| a == "--compact-on-start") {
        config.compact_on_start = true;
    }
    if let Some(spec) = flag(args, "--inject-disk-faults") {
        let schedule = spire::FaultSchedule::parse(&spec)
            .map_err(|e| format!("bad --inject-disk-faults: {e}"))?;
        eprintln!(
            "spire-serve: injecting disk faults ({}); this flag is for chaos testing only",
            schedule.label()
        );
        config.disk_faults = Some(schedule);
    }
    if let Some(sample) = flag(args, "--trace-sample") {
        config.trace_sample = sample
            .parse()
            .map_err(|e| format!("bad --trace-sample: {e}"))?;
    }
    if let Some(seed) = flag(args, "--trace-seed") {
        config.trace_seed = seed.parse().map_err(|e| format!("bad --trace-seed: {e}"))?;
    }
    if let Some(capacity) = flag(args, "--slow-log") {
        config.slow_log = capacity
            .parse()
            .map_err(|e| format!("bad --slow-log: {e}"))?;
    }
    let threads = config.threads;
    let server = spire_serve::Server::start(config).map_err(|e| format!("starting server: {e}"))?;
    // The smoke tooling greps this line for the ephemeral port.
    println!(
        "spire-serve listening on {} ({threads} worker threads)",
        server.addr()
    );
    server.join();
    Ok(())
}

/// `loadtest`: closed-loop load generation + `BENCH_serve.json`.
fn cmd_loadtest(args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    let mut config = if quick {
        spire_serve::LoadConfig::quick()
    } else {
        spire_serve::LoadConfig::full()
    };
    config.addr = flag(args, "--addr");
    if let Some(workers) = flag(args, "--workers") {
        config.workers = workers
            .parse()
            .ok()
            .filter(|&n| n > 0)
            .ok_or("bad --workers: expected a positive integer")?;
    }
    if let Some(seconds) = flag(args, "--seconds") {
        let seconds: f64 = seconds.parse().map_err(|e| format!("bad --seconds: {e}"))?;
        if !seconds.is_finite() || seconds <= 0.0 {
            return Err("bad --seconds: must be a positive number".into());
        }
        config.duration = std::time::Duration::from_secs_f64(seconds);
    }
    if let Some(depth) = flag(args, "--depth") {
        // Validate against the server's own cap up front: a rejected
        // depth would silently turn the whole run into an error-latency
        // benchmark and poison the BENCH_serve.json trajectory.
        config.depth = depth
            .parse()
            .ok()
            .filter(|d| (0..=spire_serve::api::MAX_DEPTH).contains(d))
            .ok_or(format!(
                "bad --depth: expected an integer in 0..={}",
                spire_serve::api::MAX_DEPTH
            ))?;
    }
    if let Some(out) = flag(args, "--trace-out") {
        config.trace_out = Some(PathBuf::from(out));
    }
    match &config.addr {
        Some(addr) => println!(
            "load-testing {addr}: {} workers, {:.1} s",
            config.workers,
            config.duration.as_secs_f64()
        ),
        None => println!(
            "load-testing an in-process server: {} workers, {:.1} s",
            config.workers,
            config.duration.as_secs_f64()
        ),
    }
    let report = spire_serve::loadtest::run(&config).map_err(|e| format!("load test: {e}"))?;
    println!(
        "warmup: {} cold requests in {:.2} s (p50 {} µs, max {} µs)",
        report.warmup.requests,
        report.warmup.wall.as_secs_f64(),
        report.warmup.p50_us,
        report.warmup.max_us,
    );
    println!(
        "{} requests in {:.2} s: {:.0} req/s, p50 {} µs, p99 {} µs \
         ({} ok / {} 4xx / {} 5xx / {} transport)",
        report.total,
        report.wall.as_secs_f64(),
        report.throughput_rps,
        report.p50_us,
        report.p99_us,
        report.ok,
        report.client_errors,
        report.server_errors,
        report.transport_errors,
    );
    for point in &report.open_loop {
        println!(
            "open-loop {:.0} req/s offered: {:.0} achieved, p50 {} µs, p99 {} µs, \
             max {} µs ({} ok / {} errors / {} late starts)",
            point.target_rps,
            point.achieved_rps,
            point.p50_us,
            point.p99_us,
            point.max_us,
            point.ok,
            point.errors,
            point.late_starts,
        );
    }
    println!(
        "tracing: {:.0} req/s untraced vs {:.0} req/s traced ({:.1}% overhead; \
         {:.1}% with sampling off)",
        report.tracing.untraced_rps,
        report.tracing.traced_rps,
        report.tracing.overhead_pct,
        report.tracing.sampled_off_overhead_pct,
    );
    if let Some(out) = &config.trace_out {
        println!("wrote Chrome trace to {}", out.display());
    }
    let out_dir = match flag(args, "--out-dir") {
        Some(dir) => PathBuf::from(dir),
        None => workspace_root().to_path_buf(),
    };
    let path = report
        .write_json(&out_dir)
        .map_err(|e| format!("writing BENCH_serve.json: {e}"))?;
    println!("wrote {}", path.display());
    Ok(())
}

/// `trace`: export a running server's slow log as Chrome trace_event
/// JSON, loadable in `chrome://tracing` or Perfetto.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").ok_or("missing --addr (a running spire-serve instance)")?;
    let out = PathBuf::from(flag(args, "--out").unwrap_or_else(|| "trace.json".into()));
    let mut stream =
        std::net::TcpStream::connect(&addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    spire_serve::http::set_timeouts(
        &stream,
        std::time::Duration::from_secs(30),
        std::time::Duration::from_secs(30),
    )
    .map_err(|e| format!("configuring socket: {e}"))?;
    let (status, body) =
        spire_serve::http::client_roundtrip(&mut stream, "GET", "/debug/slow?format=chrome", None)
            .map_err(|e| format!("fetching /debug/slow: {e}"))?;
    if status != 200 {
        return Err(format!("/debug/slow?format=chrome returned {status}"));
    }
    fs::write(&out, &body).map_err(|e| format!("writing {}: {e}", out.display()))?;
    println!(
        "wrote {} ({} bytes); open it in chrome://tracing or https://ui.perfetto.dev",
        out.display(),
        body.len()
    );
    Ok(())
}

/// The workspace root, resolved from the build-time manifest path (same
/// scheme as the bench writers, so artifacts land in one place wherever
/// the command is run from).
fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .filter(|p| p.is_dir())
        .unwrap_or_else(|| Path::new("."))
}

fn cmd_experiments(args: &[String]) -> Result<(), String> {
    let which = args.first().map_or("all", String::as_str);
    let run = |id: &str| -> Result<(), String> {
        match id {
            "fig2" => println!("{}", experiments::fig2(2..=10).render()),
            "fig12" | "fig12a" | "fig12b" => println!("{}", experiments::fig12(2..=10).render()),
            "fig15a" => println!("{}", experiments::fig15a(2..=10).render()),
            "fig15b" => println!("{}", experiments::fig15b(2..=10).render()),
            "table1" => println!("{}", experiments::table1(10).render()),
            "table2" => println!("{}", experiments::table2(10).render()),
            "table4" => println!("{}", experiments::table4(&[2, 10]).render()),
            "table5" | "table6" => println!("{}", experiments::table5(5).render()),
            "fig24" => println!("{}", experiments::fig24(2..=10).render()),
            "appendix-a" => {
                println!(
                    "{}",
                    experiments::appendix_a(6, &[2, 4, 8, 12, 16]).render()
                );
            }
            other => return Err(format!("unknown experiment `{other}`")),
        }
        Ok(())
    };
    if which == "all" {
        for id in [
            "fig2",
            "fig12",
            "fig15a",
            "fig15b",
            "table1",
            "table2",
            "table4",
            "table5",
            "fig24",
            "appendix-a",
        ] {
            run(id)?;
        }
        Ok(())
    } else {
        run(which)
    }
}
