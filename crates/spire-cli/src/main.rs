//! `spire-cli`: command-line driver for the Spire reproduction.
//!
//! ```text
//! spire-cli compile <file.twr> --entry f --depth n [--opt spire|cf|cn|none] [--out circuit.qc]
//! spire-cli analyze <file.twr> --entry f --depth n
//! spire-cli benchmarks
//! spire-cli experiments <fig2|fig12|fig15a|fig15b|table1|table2|table4|table5|fig24|appendix-a|all>
//! ```

use std::fs;
use std::process::ExitCode;

use bench_suite::experiments;
use qcirc::sim::{BasisState, SparseState};
use spire::{compile_source, CompileOptions, Compiled, Machine, OptConfig};
use tower::WordConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("compile") => cmd_compile(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("benchmarks") => cmd_benchmarks(),
        Some("experiments") => cmd_experiments(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  spire-cli compile <file.twr> --entry <fun> --depth <n> [--opt spire|cf|cn|none] [--out <file.qc>]
                    [--simulate] [--set <var>=<value> ...]
  spire-cli analyze <file.twr> --entry <fun> --depth <n>
  spire-cli benchmarks
  spire-cli experiments <fig2|fig12|fig15a|fig15b|table1|table2|table4|table5|fig24|appendix-a|all>

  --simulate runs the compiled circuit (sparse backend for layouts of up
  to 64 qubits, classical otherwise) and prints every live variable;
  --set initializes an input register first.";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_opt(name: &str) -> Result<OptConfig, String> {
    Ok(match name {
        "spire" => OptConfig::spire(),
        "cf" => OptConfig::flattening_only(),
        "cn" => OptConfig::narrowing_only(),
        "none" => OptConfig::none(),
        other => return Err(format!("unknown optimization config `{other}`")),
    })
}

fn load(args: &[String]) -> Result<(String, String, i64, OptConfig), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing input file")?;
    let source = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let entry = flag(args, "--entry").ok_or("missing --entry")?;
    let depth: i64 = flag(args, "--depth")
        .ok_or("missing --depth")?
        .parse()
        .map_err(|e| format!("bad --depth: {e}"))?;
    let opt = parse_opt(&flag(args, "--opt").unwrap_or_else(|| "spire".into()))?;
    Ok((source, entry, depth, opt))
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let (source, entry, depth, opt) = load(args)?;
    let compiled = compile_source(
        &source,
        &entry,
        depth,
        WordConfig::paper_default(),
        &CompileOptions::with_opt(opt),
    )
    .map_err(|e| e.to_string())?;
    let circuit = compiled.emit();
    let qc = qcirc::qcformat::write(&circuit);
    match flag(args, "--out") {
        Some(path) => {
            fs::write(&path, qc).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {} gates ({} qubits) to {path}",
                circuit.len(),
                circuit.num_qubits()
            );
        }
        None => print!("{qc}"),
    }
    if args.iter().any(|a| a == "--simulate") {
        cmd_simulate(&compiled, args)?;
    }
    Ok(())
}

/// Collect repeated `--set name=value` flags.
fn input_sets(args: &[String]) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--set" {
            let kv = args
                .get(i + 1)
                .ok_or("missing argument to --set (expected name=value)")?;
            let (name, value) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad --set `{kv}`, expected name=value"))?;
            let value: u64 = value
                .parse()
                .map_err(|e| format!("bad value in --set `{kv}`: {e}"))?;
            out.push((name.to_string(), value));
            i += 2;
        } else {
            i += 1;
        }
    }
    Ok(out)
}

/// Execute the compiled circuit and print the live variables. Layouts of
/// up to 64 qubits use the sparse backend (full gate set, including
/// Hadamard statements); larger layouts fall back to the classical
/// simulator, which Tower's Hadamard-free benchmarks permute exactly.
fn cmd_simulate(compiled: &Compiled, args: &[String]) -> Result<(), String> {
    let sets = input_sets(args)?;
    let total = compiled.layout.total_qubits;
    if total <= 64 {
        let machine = simulate_on::<SparseState>(compiled, &sets)?;
        println!(
            "simulated {total} qubits on the sparse backend ({} nonzero amplitude(s))",
            machine.state().support()
        );
        print_live_vars(compiled, |name| machine.var(name).ok());
    } else {
        let machine = simulate_on::<BasisState>(compiled, &sets)?;
        println!("simulated {total} qubits on the classical backend");
        print_live_vars(compiled, |name| machine.var(name).ok());
    }
    Ok(())
}

fn simulate_on<S: qcirc::sim::Simulator>(
    compiled: &Compiled,
    sets: &[(String, u64)],
) -> Result<Machine<S>, String> {
    let mut machine: Machine<S> = Machine::with_backend(&compiled.layout);
    for (name, value) in sets {
        machine.set_var(name, *value).map_err(|e| e.to_string())?;
    }
    machine.run(&compiled.emit()).map_err(|e| e.to_string())?;
    Ok(machine)
}

fn print_live_vars(compiled: &Compiled, read: impl Fn(&str) -> Option<u64>) {
    let mut seen = std::collections::HashSet::new();
    for (var, ty) in &compiled.types.final_context {
        let name = var.as_str();
        if name.contains('%') {
            continue; // optimizer temporary
        }
        if !seen.insert(name) {
            continue; // re-declarations share one register; print it once
        }
        match read(name) {
            Some(value) => println!("  {name}: {ty} = {value}"),
            None => println!("  {name}: {ty} = (superposed)"),
        }
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (source, entry, depth, _) = load(args)?;
    println!("cost model analysis of `{entry}` at depth {depth}:");
    for opt in [
        OptConfig::none(),
        OptConfig::narrowing_only(),
        OptConfig::flattening_only(),
        OptConfig::spire(),
    ] {
        let compiled = compile_source(
            &source,
            &entry,
            depth,
            WordConfig::paper_default(),
            &CompileOptions::with_opt(opt),
        )
        .map_err(|e| e.to_string())?;
        let hist = compiled.histogram();
        println!(
            "  {:<9} MCX-complexity {:>10}   T-complexity {:>12}   max controls {:>2}   qubits {:>5}",
            opt.label(),
            hist.mcx_complexity(),
            hist.t_complexity(),
            hist.max_controls(),
            compiled.qubits_after_decomposition(),
        );
    }
    Ok(())
}

fn cmd_benchmarks() -> Result<(), String> {
    println!("benchmark programs (paper Table 1):");
    for bench in bench_suite::programs::all_benchmarks() {
        println!(
            "  {:<8} {:<14} entry `{}`{}",
            bench.group,
            bench.name,
            bench.entry,
            if bench.constant {
                "  (constant size)"
            } else {
                ""
            }
        );
    }
    Ok(())
}

fn cmd_experiments(args: &[String]) -> Result<(), String> {
    let which = args.first().map(String::as_str).unwrap_or("all");
    let run = |id: &str| -> Result<(), String> {
        match id {
            "fig2" => println!("{}", experiments::fig2(2..=10).render()),
            "fig12" | "fig12a" | "fig12b" => println!("{}", experiments::fig12(2..=10).render()),
            "fig15a" => println!("{}", experiments::fig15a(2..=10).render()),
            "fig15b" => println!("{}", experiments::fig15b(2..=10).render()),
            "table1" => println!("{}", experiments::table1(10).render()),
            "table2" => println!("{}", experiments::table2(10).render()),
            "table4" => println!("{}", experiments::table4(&[2, 10]).render()),
            "table5" | "table6" => println!("{}", experiments::table5(5).render()),
            "fig24" => println!("{}", experiments::fig24(2..=10).render()),
            "appendix-a" => {
                println!(
                    "{}",
                    experiments::appendix_a(6, &[2, 4, 8, 12, 16]).render()
                )
            }
            other => return Err(format!("unknown experiment `{other}`")),
        }
        Ok(())
    };
    if which == "all" {
        for id in [
            "fig2",
            "fig12",
            "fig15a",
            "fig15b",
            "table1",
            "table2",
            "table4",
            "table5",
            "fig24",
            "appendix-a",
        ] {
            run(id)?;
        }
        Ok(())
    } else {
        run(which)
    }
}
