//! Quantum logic gates at the two levels the paper reasons about: the
//! idealized MCX level (arbitrarily controllable Clifford gates) and the
//! Clifford+T level supported by the surface code.

use std::fmt;

/// Index of a qubit (wire) in a circuit.
pub type Qubit = u32;

/// A quantum logic gate.
///
/// The MCX-level gates ([`Gate::Mcx`] and [`Gate::Mch`]) carry an arbitrary
/// set of positive controls; their control lists are kept sorted and
/// duplicate-free so that structurally equal gates compare equal, which the
/// Toffoli-cancellation optimizers rely on. The remaining variants are the
/// single-qubit phase gates of the Clifford+T gate set, which appear only in
/// decomposed circuits.
///
/// # Example
///
/// ```
/// use qcirc::Gate;
///
/// let toffoli = Gate::toffoli(0, 1, 2);
/// assert_eq!(toffoli.num_controls(), 2);
/// assert!(toffoli.is_self_inverse());
/// assert_eq!(toffoli.t_cost(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Gate {
    // NOTE: keep the variant set in sync with [`GateKind`] and
    // [`GateView`]; the packed circuit representation round-trips through
    // them.
    /// Multiply-controlled NOT. Zero controls is an X gate, one control is a
    /// CNOT, two controls is a Toffoli gate.
    Mcx {
        /// Positive control qubits (sorted, duplicate-free).
        controls: Vec<Qubit>,
        /// The qubit flipped when all controls are 1.
        target: Qubit,
    },
    /// Multiply-controlled Hadamard. Zero controls is a plain H gate.
    Mch {
        /// Positive control qubits (sorted, duplicate-free).
        controls: Vec<Qubit>,
        /// The qubit the Hadamard acts on.
        target: Qubit,
    },
    /// T gate: |x⟩ ↦ e^{ixπ/4}|x⟩.
    T(Qubit),
    /// Adjoint of the T gate.
    Tdg(Qubit),
    /// S = T² phase gate.
    S(Qubit),
    /// Adjoint of the S gate.
    Sdg(Qubit),
    /// Z = S² phase flip.
    Z(Qubit),
}

/// The kind of a gate, without its operands.
///
/// [`GateView`] pairs a kind with borrowed operands; the packed
/// [`Circuit`](crate::Circuit) representation stores kinds tag-free per
/// gate. Phase gates carry their qubit in the view's `target` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Multiply-controlled NOT.
    Mcx,
    /// Multiply-controlled Hadamard.
    Mch,
    /// T gate.
    T,
    /// T† gate.
    Tdg,
    /// S gate.
    S,
    /// S† gate.
    Sdg,
    /// Z gate.
    Z,
}

impl GateKind {
    /// Whether this is a single-qubit phase gate (T/T†/S/S†/Z).
    pub fn is_phase(self) -> bool {
        matches!(
            self,
            GateKind::T | GateKind::Tdg | GateKind::S | GateKind::Sdg | GateKind::Z
        )
    }

    /// The kind of the Hermitian adjoint: T↔T†, S↔S†, everything else is
    /// self-inverse.
    pub fn adjoint(self) -> GateKind {
        match self {
            GateKind::T => GateKind::Tdg,
            GateKind::Tdg => GateKind::T,
            GateKind::S => GateKind::Sdg,
            GateKind::Sdg => GateKind::S,
            other => other,
        }
    }
}

/// A borrowed, allocation-free view of one gate.
///
/// This is the currency of the packed [`Circuit`](crate::Circuit): iterating
/// a circuit yields views whose control lists borrow the circuit's shared
/// operand arena, so consumers (simulators, decomposition, `.qc` emission,
/// the optimizer passes) never clone a control vector per gate. For phase
/// gates `controls` is empty and `target` is the phase qubit.
///
/// # Example
///
/// ```
/// use qcirc::{Gate, GateKind};
///
/// let toffoli = Gate::toffoli(0, 1, 2);
/// let view = toffoli.as_view();
/// assert_eq!(view.kind, GateKind::Mcx);
/// assert_eq!(view.controls, &[0, 1]);
/// assert_eq!(view.target, 2);
/// assert_eq!(view.to_gate(), toffoli);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateView<'a> {
    /// The gate kind.
    pub kind: GateKind,
    /// Positive control qubits (sorted, duplicate-free; empty for phase
    /// gates and uncontrolled X/H).
    pub controls: &'a [Qubit],
    /// The target qubit (for phase gates, the qubit the phase acts on).
    pub target: Qubit,
}

impl GateView<'_> {
    /// Materialize this view as an owned [`Gate`].
    pub fn to_gate(&self) -> Gate {
        match self.kind {
            GateKind::Mcx => Gate::Mcx {
                controls: self.controls.to_vec(),
                target: self.target,
            },
            GateKind::Mch => Gate::Mch {
                controls: self.controls.to_vec(),
                target: self.target,
            },
            GateKind::T => Gate::T(self.target),
            GateKind::Tdg => Gate::Tdg(self.target),
            GateKind::S => Gate::S(self.target),
            GateKind::Sdg => Gate::Sdg(self.target),
            GateKind::Z => Gate::Z(self.target),
        }
    }

    /// Number of control qubits.
    pub fn num_controls(&self) -> usize {
        self.controls.len()
    }

    /// Iterate over all qubits this gate touches (controls then target).
    pub fn qubits(&self) -> impl Iterator<Item = Qubit> + '_ {
        self.controls
            .iter()
            .copied()
            .chain(std::iter::once(self.target))
    }

    /// The largest qubit index used by this gate.
    pub fn max_qubit(&self) -> Qubit {
        self.controls.last().copied().unwrap_or(0).max(self.target)
    }

    /// Whether `other` is the Hermitian adjoint of this gate — the
    /// comparison [`cancel passes`](https://docs.rs/qopt) make per
    /// candidate, without materializing an adjoint gate.
    pub fn is_adjoint_of(&self, other: &GateView<'_>) -> bool {
        self.target == other.target
            && self.kind == other.kind.adjoint()
            && self.controls == other.controls
    }

    /// Whether the gate is a Clifford gate (see [`Gate::is_clifford`]).
    pub fn is_clifford(&self) -> bool {
        match self.kind {
            GateKind::Mcx => self.controls.len() <= 1,
            GateKind::Mch => self.controls.is_empty(),
            GateKind::S | GateKind::Sdg | GateKind::Z => true,
            GateKind::T | GateKind::Tdg => false,
        }
    }

    /// T-cost of this gate (see [`Gate::t_cost`]).
    pub fn t_cost(&self) -> u64 {
        match self.kind {
            GateKind::Mcx => crate::histogram::t_of_mcx(self.controls.len()),
            GateKind::Mch => crate::histogram::t_of_mch(self.controls.len()),
            GateKind::T | GateKind::Tdg => 1,
            GateKind::S | GateKind::Sdg | GateKind::Z => 0,
        }
    }
}

fn normalize_controls(mut controls: Vec<Qubit>, target: Qubit) -> Vec<Qubit> {
    controls.sort_unstable();
    controls.dedup();
    debug_assert!(
        !controls.contains(&target),
        "gate control {target} coincides with its target"
    );
    controls
}

impl Gate {
    /// An uncontrolled NOT gate on `target`.
    pub fn x(target: Qubit) -> Self {
        Gate::Mcx {
            controls: Vec::new(),
            target,
        }
    }

    /// A controlled-NOT gate.
    pub fn cnot(control: Qubit, target: Qubit) -> Self {
        Gate::mcx(vec![control], target)
    }

    /// A Toffoli (doubly-controlled NOT) gate.
    pub fn toffoli(c1: Qubit, c2: Qubit, target: Qubit) -> Self {
        Gate::mcx(vec![c1, c2], target)
    }

    /// A multiply-controlled NOT with the given control set.
    ///
    /// Controls are sorted and deduplicated.
    pub fn mcx(controls: Vec<Qubit>, target: Qubit) -> Self {
        Gate::Mcx {
            controls: normalize_controls(controls, target),
            target,
        }
    }

    /// An uncontrolled Hadamard gate.
    pub fn h(target: Qubit) -> Self {
        Gate::Mch {
            controls: Vec::new(),
            target,
        }
    }

    /// A controlled-Hadamard gate.
    pub fn ch(control: Qubit, target: Qubit) -> Self {
        Gate::mch(vec![control], target)
    }

    /// A multiply-controlled Hadamard with the given control set.
    pub fn mch(controls: Vec<Qubit>, target: Qubit) -> Self {
        Gate::Mch {
            controls: normalize_controls(controls, target),
            target,
        }
    }

    /// The kind of this gate.
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::Mcx { .. } => GateKind::Mcx,
            Gate::Mch { .. } => GateKind::Mch,
            Gate::T(_) => GateKind::T,
            Gate::Tdg(_) => GateKind::Tdg,
            Gate::S(_) => GateKind::S,
            Gate::Sdg(_) => GateKind::Sdg,
            Gate::Z(_) => GateKind::Z,
        }
    }

    /// A borrowed [`GateView`] of this gate.
    pub fn as_view(&self) -> GateView<'_> {
        match self {
            Gate::Mcx { controls, target } => GateView {
                kind: GateKind::Mcx,
                controls,
                target: *target,
            },
            Gate::Mch { controls, target } => GateView {
                kind: GateKind::Mch,
                controls,
                target: *target,
            },
            Gate::T(q) | Gate::Tdg(q) | Gate::S(q) | Gate::Sdg(q) | Gate::Z(q) => GateView {
                kind: self.kind(),
                controls: &[],
                target: *q,
            },
        }
    }

    /// Whether `other` is the Hermitian adjoint of this gate.
    ///
    /// Equivalent to `*self == other.adjoint()` but without constructing
    /// the adjoint gate (no control-vector clone); this is the comparison
    /// the cancellation passes make once per walked candidate.
    pub fn is_adjoint_of(&self, other: &Gate) -> bool {
        self.as_view().is_adjoint_of(&other.as_view())
    }

    /// Number of control qubits (zero for uncontrolled and phase gates).
    pub fn num_controls(&self) -> usize {
        match self {
            Gate::Mcx { controls, .. } | Gate::Mch { controls, .. } => controls.len(),
            _ => 0,
        }
    }

    /// All qubits this gate touches (controls then target).
    pub fn qubits(&self) -> Vec<Qubit> {
        match self {
            Gate::Mcx { controls, target } | Gate::Mch { controls, target } => {
                let mut qs = controls.clone();
                qs.push(*target);
                qs
            }
            Gate::T(q) | Gate::Tdg(q) | Gate::S(q) | Gate::Sdg(q) | Gate::Z(q) => vec![*q],
        }
    }

    /// The largest qubit index used by this gate.
    pub fn max_qubit(&self) -> Qubit {
        self.qubits().into_iter().max().expect("gate has qubits")
    }

    /// Whether this gate shares any qubit with `other`.
    pub fn overlaps(&self, other: &Gate) -> bool {
        let mine = self.qubits();
        other.qubits().iter().any(|q| mine.contains(q))
    }

    /// Whether the gate is its own inverse.
    pub fn is_self_inverse(&self) -> bool {
        matches!(self, Gate::Mcx { .. } | Gate::Mch { .. } | Gate::Z(_))
    }

    /// The inverse (Hermitian adjoint) of this gate.
    pub fn adjoint(&self) -> Gate {
        match self {
            Gate::T(q) => Gate::Tdg(*q),
            Gate::Tdg(q) => Gate::T(*q),
            Gate::S(q) => Gate::Sdg(*q),
            Gate::Sdg(q) => Gate::S(*q),
            other => other.clone(),
        }
    }

    /// The same gate with `extra` additional positive controls.
    ///
    /// This is the gate-level meaning of placing a statement under a quantum
    /// `if` (paper Figure 21): every gate in the compiled body acquires the
    /// condition qubit as an additional control.
    ///
    /// # Panics
    ///
    /// Panics if called on a single-qubit phase gate; phase gates only appear
    /// in decomposed circuits, which are never placed under controls by this
    /// code base.
    pub fn with_extra_controls(&self, extra: &[Qubit]) -> Gate {
        let extend = |controls: &Vec<Qubit>| {
            let mut cs = controls.clone();
            cs.extend_from_slice(extra);
            cs
        };
        match self {
            Gate::Mcx { controls, target } => Gate::mcx(extend(controls), *target),
            Gate::Mch { controls, target } => Gate::mch(extend(controls), *target),
            other => panic!("cannot add controls to decomposed phase gate {other:?}"),
        }
    }

    /// Whether the gate is a Clifford gate (free under the surface code).
    ///
    /// NOT, CNOT, H, S, and Z are Clifford; T is not, and neither is any MCX
    /// with two or more controls nor any controlled Hadamard.
    pub fn is_clifford(&self) -> bool {
        match self {
            Gate::Mcx { controls, .. } => controls.len() <= 1,
            Gate::Mch { controls, .. } => controls.is_empty(),
            Gate::S(_) | Gate::Sdg(_) | Gate::Z(_) => true,
            Gate::T(_) | Gate::Tdg(_) => false,
        }
    }

    /// Number of T gates this gate costs under the decompositions of paper
    /// Figures 5 and 6 (see [`t_of_mcx`](crate::t_of_mcx) and
    /// [`t_of_mch`](crate::t_of_mch)).
    pub fn t_cost(&self) -> u64 {
        match self {
            Gate::Mcx { controls, .. } => crate::histogram::t_of_mcx(controls.len()),
            Gate::Mch { controls, .. } => crate::histogram::t_of_mch(controls.len()),
            Gate::T(_) | Gate::Tdg(_) => 1,
            Gate::S(_) | Gate::Sdg(_) | Gate::Z(_) => 0,
        }
    }
}

impl fmt::Display for GateView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (q, t) = (self.target, self.target);
        match self.kind {
            GateKind::Mcx if self.controls.is_empty() => write!(f, "X {t}"),
            GateKind::Mcx => {
                write!(f, "tof")?;
                for c in self.controls {
                    write!(f, " {c}")?;
                }
                write!(f, " {t}")
            }
            GateKind::Mch if self.controls.is_empty() => write!(f, "H {t}"),
            GateKind::Mch => {
                write!(f, "ch")?;
                for c in self.controls {
                    write!(f, " {c}")?;
                }
                write!(f, " {t}")
            }
            GateKind::T => write!(f, "T {q}"),
            GateKind::Tdg => write!(f, "T* {q}"),
            GateKind::S => write!(f, "S {q}"),
            GateKind::Sdg => write!(f, "S* {q}"),
            GateKind::Z => write!(f, "Z {q}"),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Mcx { controls, target } => match controls.len() {
                0 => write!(f, "X {target}"),
                _ => {
                    write!(f, "tof")?;
                    for c in controls {
                        write!(f, " {c}")?;
                    }
                    write!(f, " {target}")
                }
            },
            Gate::Mch { controls, target } => match controls.len() {
                0 => write!(f, "H {target}"),
                _ => {
                    write!(f, "ch")?;
                    for c in controls {
                        write!(f, " {c}")?;
                    }
                    write!(f, " {target}")
                }
            },
            Gate::T(q) => write!(f, "T {q}"),
            Gate::Tdg(q) => write!(f, "T* {q}"),
            Gate::S(q) => write!(f, "S {q}"),
            Gate::Sdg(q) => write!(f, "S* {q}"),
            Gate::Z(q) => write!(f, "Z {q}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controls_are_normalized() {
        let g = Gate::mcx(vec![3, 1, 2, 1], 0);
        assert_eq!(
            g,
            Gate::Mcx {
                controls: vec![1, 2, 3],
                target: 0
            }
        );
    }

    #[test]
    fn structural_equality_ignores_control_order() {
        assert_eq!(Gate::toffoli(2, 1, 0), Gate::toffoli(1, 2, 0));
    }

    #[test]
    fn x_has_no_controls() {
        assert_eq!(Gate::x(5).num_controls(), 0);
        assert_eq!(Gate::x(5).t_cost(), 0);
    }

    #[test]
    fn cnot_is_clifford_toffoli_is_not() {
        assert!(Gate::cnot(0, 1).is_clifford());
        assert!(!Gate::toffoli(0, 1, 2).is_clifford());
    }

    #[test]
    fn adjoint_of_t_is_tdg() {
        assert_eq!(Gate::T(0).adjoint(), Gate::Tdg(0));
        assert_eq!(Gate::Tdg(0).adjoint(), Gate::T(0));
        assert_eq!(Gate::toffoli(0, 1, 2).adjoint(), Gate::toffoli(0, 1, 2));
    }

    #[test]
    fn with_extra_controls_extends_and_sorts() {
        let g = Gate::cnot(4, 0).with_extra_controls(&[2]);
        assert_eq!(g, Gate::mcx(vec![2, 4], 0));
    }

    #[test]
    fn overlaps_detects_shared_qubits() {
        assert!(Gate::cnot(0, 1).overlaps(&Gate::x(1)));
        assert!(!Gate::cnot(0, 1).overlaps(&Gate::x(2)));
    }

    #[test]
    fn display_roundtrips_common_gates() {
        assert_eq!(Gate::x(3).to_string(), "X 3");
        assert_eq!(Gate::toffoli(0, 1, 2).to_string(), "tof 0 1 2");
        assert_eq!(Gate::Tdg(7).to_string(), "T* 7");
    }

    #[test]
    fn is_adjoint_of_matches_materialized_adjoint() {
        let gates = [
            Gate::x(0),
            Gate::cnot(0, 1),
            Gate::toffoli(0, 1, 2),
            Gate::mcx(vec![0, 1, 2], 3),
            Gate::h(1),
            Gate::ch(0, 1),
            Gate::T(0),
            Gate::Tdg(0),
            Gate::S(2),
            Gate::Sdg(2),
            Gate::Z(1),
            Gate::T(1),
        ];
        for a in &gates {
            for b in &gates {
                assert_eq!(
                    a.is_adjoint_of(b),
                    *a == b.adjoint(),
                    "is_adjoint_of disagrees on {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn view_roundtrips_and_displays() {
        for gate in [
            Gate::x(3),
            Gate::toffoli(0, 1, 2),
            Gate::mch(vec![4, 5], 6),
            Gate::Tdg(7),
            Gate::Z(0),
        ] {
            let view = gate.as_view();
            assert_eq!(view.to_gate(), gate);
            assert_eq!(view.to_string(), gate.to_string());
            assert_eq!(view.max_qubit(), gate.max_qubit());
            assert_eq!(view.t_cost(), gate.t_cost());
            assert_eq!(view.is_clifford(), gate.is_clifford());
        }
    }

    #[test]
    fn t_cost_matches_figure_5_and_6() {
        assert_eq!(Gate::cnot(0, 1).t_cost(), 0);
        assert_eq!(Gate::toffoli(0, 1, 2).t_cost(), 7);
        // MCX with 3 controls: 3 Toffolis (Figure 5) at 7 T each (Figure 6).
        assert_eq!(Gate::mcx(vec![0, 1, 2], 3).t_cost(), 21);
    }
}
