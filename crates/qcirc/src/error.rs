//! Error types for the circuit substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by circuit-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QcircError {
    /// A gate that has no classical (basis-state permutation) action was
    /// given to the classical reversible simulator.
    NotClassical {
        /// Rendering of the offending gate.
        gate: String,
    },
    /// A gate referenced a qubit outside the simulator's register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: u32,
        /// The number of qubits available.
        num_qubits: u32,
    },
    /// A decomposition pass encountered a gate of unexpectedly high arity.
    ArityTooLarge {
        /// Maximum supported number of controls.
        max: usize,
        /// Number of controls found.
        found: usize,
    },
    /// A `.qc` file failed to parse.
    Parse {
        /// 1-based line number of the error.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The state-vector simulator was asked for more qubits than it supports.
    TooManyQubits {
        /// Requested qubit count.
        requested: u32,
        /// Supported maximum.
        max: u32,
    },
}

impl QcircError {
    /// Stable machine-readable error code (`qcirc/` namespace).
    ///
    /// Codes are append-only: published codes never change meaning. The
    /// serving layer exposes them in structured error bodies alongside
    /// the `tower/` and `spire/` codes.
    pub fn code(&self) -> &'static str {
        match self {
            QcircError::NotClassical { .. } => "qcirc/not-classical",
            QcircError::QubitOutOfRange { .. } => "qcirc/qubit-out-of-range",
            QcircError::ArityTooLarge { .. } => "qcirc/arity-too-large",
            QcircError::Parse { .. } => "qcirc/parse",
            QcircError::TooManyQubits { .. } => "qcirc/too-many-qubits",
        }
    }
}

impl fmt::Display for QcircError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QcircError::NotClassical { gate } => {
                write!(f, "gate `{gate}` has no classical action")
            }
            QcircError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "qubit {qubit} out of range for {num_qubits}-qubit state")
            }
            QcircError::ArityTooLarge { max, found } => {
                write!(f, "gate arity {found} exceeds supported maximum {max}")
            }
            QcircError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            QcircError::TooManyQubits { requested, max } => {
                write!(
                    f,
                    "{requested} qubits requested, simulator supports at most {max}"
                )
            }
        }
    }
}

impl Error for QcircError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_nonempty() {
        let errors = [
            QcircError::NotClassical { gate: "H 0".into() },
            QcircError::QubitOutOfRange {
                qubit: 9,
                num_qubits: 4,
            },
            QcircError::ArityTooLarge { max: 2, found: 5 },
            QcircError::Parse {
                line: 3,
                message: "bad token".into(),
            },
            QcircError::TooManyQubits {
                requested: 40,
                max: 28,
            },
        ];
        let mut codes = std::collections::HashSet::new();
        for e in errors {
            assert!(!e.to_string().is_empty());
            assert!(e.code().starts_with("qcirc/"));
            assert!(codes.insert(e.code()), "duplicate code {}", e.code());
        }
    }
}
