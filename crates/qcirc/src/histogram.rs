//! Gate-count histograms: the exact currency of the paper's cost model.
//!
//! The paper's MCX-complexity counts gates in the idealized gate set of
//! arbitrarily controllable Clifford gates, and its T-complexity counts the
//! T gates remaining after every MCX is decomposed by Figure 5 (MCX to
//! Toffoli) and Figure 6 (Toffoli to Clifford+T). Both quantities are
//! functions of the *histogram* of gate arities: how many MCX gates have
//! `c` controls, for each `c`. [`GateHistogram`] stores that histogram and
//! composes under sequencing (addition), repetition (scaling), and the
//! quantum `if` (shifting every arity up by one), which is what makes the
//! syntax-level cost model of paper Section 5 exact.

use std::fmt;
use std::ops::{Add, AddAssign};

use crate::gate::Gate;

/// Number of T gates required to realize an MCX gate with `c` controls using
/// the decompositions of paper Figures 5 and 6.
///
/// An MCX with `c ≥ 2` controls expands to `2(c-2)+1` Toffoli gates
/// (Figure 5), each costing 7 T gates (Figure 6). NOT and CNOT are Clifford
/// and cost nothing.
///
/// ```
/// assert_eq!(qcirc::t_of_mcx(0), 0);
/// assert_eq!(qcirc::t_of_mcx(1), 0);
/// assert_eq!(qcirc::t_of_mcx(2), 7);
/// assert_eq!(qcirc::t_of_mcx(3), 21);
/// assert_eq!(qcirc::t_of_mcx(4), 35);
/// ```
pub fn t_of_mcx(controls: usize) -> u64 {
    if controls < 2 {
        0
    } else {
        7 * (2 * (controls as u64 - 2) + 1)
    }
}

/// Number of Toffoli gates in the Figure 5 decomposition of an MCX gate with
/// `c` controls (zero for NOT and CNOT, which need no decomposition).
pub fn toffolis_of_mcx(controls: usize) -> u64 {
    if controls < 2 {
        0
    } else {
        2 * (controls as u64 - 2) + 1
    }
}

/// Number of clean ancilla qubits used by the Figure 5 decomposition of an
/// MCX gate with `c` controls.
pub fn ancillas_of_mcx(controls: usize) -> u64 {
    (controls as u64).saturating_sub(2)
}

/// Number of T gates required to realize a multiply-controlled Hadamard with
/// `c` controls under this crate's decomposition.
///
/// A singly-controlled Hadamard uses the standard Clifford+T construction
/// `S·H·T·CX·T†·H·S†` with T-count 2 (the paper uses the Lee et al.
/// construction with T-count 8; the constant `c^T_CH` is explicitly
/// implementation-determined in the paper's cost model, and ours is 2).
/// For `c ≥ 2` controls, the conjunction of the controls is computed into an
/// ancilla by a chain of `c-1` Toffoli gates, a controlled Hadamard is
/// applied, and the chain is uncomputed: `14(c-1) + 2` T gates.
pub fn t_of_mch(controls: usize) -> u64 {
    match controls {
        0 => 0,
        1 => 2,
        c => 14 * (c as u64 - 1) + 2,
    }
}

/// Histogram of MCX-level gate arities for a circuit or program fragment.
///
/// `mcx[c]` counts MCX gates with exactly `c` controls; `mch[c]` counts
/// multiply-controlled Hadamards with `c` controls.
///
/// # Example
///
/// ```
/// use qcirc::{Gate, GateHistogram};
///
/// let mut hist = GateHistogram::new();
/// hist.record(&Gate::toffoli(0, 1, 2));
/// hist.record(&Gate::cnot(0, 1));
/// assert_eq!(hist.mcx_complexity(), 2);
/// assert_eq!(hist.t_complexity(), 7);
///
/// // Placing the fragment under one quantum `if` adds a control to every
/// // gate: the CNOT becomes a Toffoli and the Toffoli becomes a 3-MCX.
/// let under_if = hist.shifted(1);
/// assert_eq!(under_if.t_complexity(), 21 + 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GateHistogram {
    mcx: Vec<u64>,
    mch: Vec<u64>,
}

impl GateHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `count` MCX gates with `controls` controls.
    pub fn add_mcx(&mut self, controls: usize, count: u64) {
        if count == 0 {
            return;
        }
        if self.mcx.len() <= controls {
            self.mcx.resize(controls + 1, 0);
        }
        self.mcx[controls] += count;
    }

    /// Record `count` multiply-controlled Hadamards with `controls` controls.
    pub fn add_mch(&mut self, controls: usize, count: u64) {
        if count == 0 {
            return;
        }
        if self.mch.len() <= controls {
            self.mch.resize(controls + 1, 0);
        }
        self.mch[controls] += count;
    }

    /// Record one MCX-level gate.
    ///
    /// # Panics
    ///
    /// Panics when given a decomposed phase gate (T/S/Z): histograms account
    /// for MCX-level circuits only.
    pub fn record(&mut self, gate: &Gate) {
        self.record_view(&gate.as_view());
    }

    /// Record one MCX-level gate by view (no gate materialized).
    ///
    /// # Panics
    ///
    /// Panics when given a decomposed phase gate, like
    /// [`GateHistogram::record`].
    pub fn record_view(&mut self, view: &crate::gate::GateView<'_>) {
        match view.kind {
            crate::gate::GateKind::Mcx => self.add_mcx(view.controls.len(), 1),
            crate::gate::GateKind::Mch => self.add_mch(view.controls.len(), 1),
            other => panic!("phase gate {other:?} in MCX-level histogram"),
        }
    }

    /// Number of MCX gates with exactly `controls` controls.
    pub fn mcx_count(&self, controls: usize) -> u64 {
        self.mcx.get(controls).copied().unwrap_or(0)
    }

    /// Number of controlled Hadamards with exactly `controls` controls.
    pub fn mch_count(&self, controls: usize) -> u64 {
        self.mch.get(controls).copied().unwrap_or(0)
    }

    /// The paper's MCX-complexity: total number of gates in the idealized
    /// gate set of arbitrarily controllable Clifford gates.
    pub fn mcx_complexity(&self) -> u64 {
        self.mcx.iter().sum::<u64>() + self.mch.iter().sum::<u64>()
    }

    /// The paper's T-complexity: T gates after decomposing via Figures 5/6.
    pub fn t_complexity(&self) -> u64 {
        let mcx: u64 = self
            .mcx
            .iter()
            .enumerate()
            .map(|(c, n)| n * t_of_mcx(c))
            .sum();
        let mch: u64 = self
            .mch
            .iter()
            .enumerate()
            .map(|(c, n)| n * t_of_mch(c))
            .sum();
        mcx + mch
    }

    /// Number of Toffoli gates after the Figure 5 decomposition.
    pub fn toffoli_count(&self) -> u64 {
        self.mcx
            .iter()
            .enumerate()
            .map(|(c, n)| n * toffolis_of_mcx(c))
            .sum()
    }

    /// The largest control arity appearing in the histogram.
    pub fn max_controls(&self) -> usize {
        let mcx = self.mcx.iter().rposition(|&n| n > 0);
        let mch = self.mch.iter().rposition(|&n| n > 0);
        mcx.into_iter().chain(mch).max().unwrap_or(0)
    }

    /// The histogram of the same gates placed under `extra` additional
    /// controls: every arity increases by `extra`.
    ///
    /// This is the compositional rule for the quantum `if` statement.
    pub fn shifted(&self, extra: usize) -> GateHistogram {
        let mut out = GateHistogram::new();
        for (c, &n) in self.mcx.iter().enumerate() {
            out.add_mcx(c + extra, n);
        }
        for (c, &n) in self.mch.iter().enumerate() {
            out.add_mch(c + extra, n);
        }
        out
    }

    /// The histogram of the same gates repeated `factor` times.
    pub fn scaled(&self, factor: u64) -> GateHistogram {
        let mut out = self.clone();
        for n in &mut out.mcx {
            *n *= factor;
        }
        for n in &mut out.mch {
            *n *= factor;
        }
        out
    }

    /// Whether the histogram records no gates.
    pub fn is_empty(&self) -> bool {
        self.mcx.iter().all(|&n| n == 0) && self.mch.iter().all(|&n| n == 0)
    }

    /// Nonzero MCX entries as `(controls, count)` pairs, ascending arity.
    pub fn mcx_counts(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.mcx
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(c, &n)| (c, n))
    }

    /// Nonzero MCH entries as `(controls, count)` pairs, ascending arity.
    pub fn mch_counts(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.mch
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(c, &n)| (c, n))
    }

    /// Serialize as a JSON object.
    ///
    /// The arity histograms are arrays of `[controls, count]` pairs (only
    /// nonzero entries), alongside the derived complexity measures, e.g.
    /// `{"mcx":[[2,3]],"mch":[],"mcx_complexity":3,"t_complexity":21,...}`.
    ///
    /// ```
    /// use qcirc::{Gate, GateHistogram};
    ///
    /// let mut hist = GateHistogram::new();
    /// hist.record(&Gate::toffoli(0, 1, 2));
    /// assert_eq!(
    ///     hist.to_json(),
    ///     r#"{"mcx":[[2,1]],"mch":[],"mcx_complexity":1,"t_complexity":7,"toffoli_count":1,"max_controls":2}"#
    /// );
    /// ```
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The [`to_json`](GateHistogram::to_json) serialization as a
    /// structured [`Json`](crate::json::Json) value.
    pub fn to_json_value(&self) -> crate::json::Json {
        use crate::json::Json;
        fn pairs(entries: impl Iterator<Item = (usize, u64)>) -> Json {
            entries
                .map(|(c, n)| Json::array([Json::from(c), Json::from(n)]))
                .collect()
        }
        Json::obj()
            .field("mcx", pairs(self.mcx_counts()))
            .field("mch", pairs(self.mch_counts()))
            .field("mcx_complexity", self.mcx_complexity())
            .field("t_complexity", self.t_complexity())
            .field("toffoli_count", self.toffoli_count())
            .field("max_controls", self.max_controls())
            .build()
    }
}

impl Add for GateHistogram {
    type Output = GateHistogram;

    fn add(mut self, rhs: GateHistogram) -> GateHistogram {
        self += rhs;
        self
    }
}

impl AddAssign for GateHistogram {
    fn add_assign(&mut self, rhs: GateHistogram) {
        for (c, n) in rhs.mcx.iter().enumerate() {
            self.add_mcx(c, *n);
        }
        for (c, n) in rhs.mch.iter().enumerate() {
            self.add_mch(c, *n);
        }
    }
}

impl fmt::Display for GateHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mcx={} T={} toffoli={}",
            self.mcx_complexity(),
            self.t_complexity(),
            self.toffoli_count()
        )
    }
}

/// Gate counts for a fully decomposed Clifford+T circuit.
///
/// Used when reporting the output of circuit optimizers in the style of the
/// paper's Tables 5 and 6 (T, H, and CNOT columns).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliffordTCounts {
    /// Uncontrolled X gates.
    pub x: u64,
    /// CNOT gates.
    pub cnot: u64,
    /// Toffoli gates remaining (zero in a fully decomposed circuit).
    pub toffoli: u64,
    /// MCX gates with three or more controls (zero once decomposed).
    pub mcx_large: u64,
    /// Hadamard gates.
    pub h: u64,
    /// Controlled Hadamards remaining (zero once decomposed).
    pub ch: u64,
    /// T gates.
    pub t: u64,
    /// T† gates.
    pub tdg: u64,
    /// S gates.
    pub s: u64,
    /// S† gates.
    pub sdg: u64,
    /// Z gates.
    pub z: u64,
}

impl CliffordTCounts {
    /// Count the gates of a circuit slice.
    pub fn of_gates(gates: &[Gate]) -> Self {
        let mut counts = CliffordTCounts::default();
        for gate in gates {
            counts.record(gate);
        }
        counts
    }

    /// Record a single gate.
    pub fn record(&mut self, gate: &Gate) {
        self.record_view(&gate.as_view());
    }

    /// Record a single gate by view (no gate materialized).
    pub fn record_view(&mut self, view: &crate::gate::GateView<'_>) {
        use crate::gate::GateKind;
        match view.kind {
            GateKind::Mcx => match view.controls.len() {
                0 => self.x += 1,
                1 => self.cnot += 1,
                2 => self.toffoli += 1,
                _ => self.mcx_large += 1,
            },
            GateKind::Mch => match view.controls.len() {
                0 => self.h += 1,
                _ => self.ch += 1,
            },
            GateKind::T => self.t += 1,
            GateKind::Tdg => self.tdg += 1,
            GateKind::S => self.s += 1,
            GateKind::Sdg => self.sdg += 1,
            GateKind::Z => self.z += 1,
        }
    }

    /// Total T-count (T plus T†), the paper's headline metric, including the
    /// cost of any not-yet-decomposed Toffoli/MCX/CH gates.
    pub fn t_count(&self) -> u64 {
        self.t + self.tdg + 7 * self.toffoli + 2 * self.ch
        // mcx_large is intentionally not folded in: callers decompose first,
        // and the tests assert mcx_large == 0 before reading t_count.
    }

    /// Serialize as a flat JSON object of gate counters plus the derived
    /// `t_count` and `total`.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// The [`to_json`](CliffordTCounts::to_json) serialization as a
    /// structured [`Json`](crate::json::Json) value.
    pub fn to_json_value(&self) -> crate::json::Json {
        crate::json::Json::obj()
            .field("x", self.x)
            .field("cnot", self.cnot)
            .field("toffoli", self.toffoli)
            .field("mcx_large", self.mcx_large)
            .field("h", self.h)
            .field("ch", self.ch)
            .field("t", self.t)
            .field("tdg", self.tdg)
            .field("s", self.s)
            .field("sdg", self.sdg)
            .field("z", self.z)
            .field("t_count", self.t_count())
            .field("total", self.total())
            .build()
    }

    /// Total number of gates counted.
    pub fn total(&self) -> u64 {
        self.x
            + self.cnot
            + self.toffoli
            + self.mcx_large
            + self.h
            + self.ch
            + self.t
            + self.tdg
            + self.s
            + self.sdg
            + self.z
    }
}

impl fmt::Display for CliffordTCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "T={} H={} CNOT={} X={} S={} Z={}",
            self.t_count(),
            self.h,
            self.cnot,
            self.x,
            self.s + self.sdg,
            self.z
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_of_mcx_matches_paper_formula() {
        // Beverland et al. lower bound is n+1; Figures 5/6 give 7(2(n-2)+1).
        for c in 2..20 {
            assert_eq!(t_of_mcx(c), 7 * (2 * (c as u64 - 2) + 1));
            assert!(t_of_mcx(c) > c as u64);
        }
    }

    #[test]
    fn shifting_adds_one_control_everywhere() {
        let mut hist = GateHistogram::new();
        hist.add_mcx(0, 5);
        hist.add_mcx(2, 3);
        let shifted = hist.shifted(2);
        assert_eq!(shifted.mcx_count(2), 5);
        assert_eq!(shifted.mcx_count(4), 3);
        assert_eq!(shifted.mcx_complexity(), hist.mcx_complexity());
    }

    #[test]
    fn shift_then_t_complexity_matches_paper_increment() {
        // Adding a control to a gate that already has >= 2 controls costs
        // exactly c_ctrl = 14 additional T gates (paper Section 5).
        for c in 2..10 {
            assert_eq!(t_of_mcx(c + 1) - t_of_mcx(c), 14);
        }
        // The first two controls are special: 0 -> 1 is free (CNOT is
        // Clifford), 1 -> 2 costs one Toffoli (7 T).
        assert_eq!(t_of_mcx(1) - t_of_mcx(0), 0);
        assert_eq!(t_of_mcx(2) - t_of_mcx(1), 7);
    }

    #[test]
    fn histogram_addition_is_componentwise() {
        let mut a = GateHistogram::new();
        a.add_mcx(1, 2);
        let mut b = GateHistogram::new();
        b.add_mcx(1, 3);
        b.add_mch(0, 1);
        let sum = a + b;
        assert_eq!(sum.mcx_count(1), 5);
        assert_eq!(sum.mch_count(0), 1);
    }

    #[test]
    fn figure_4_example_t_count() {
        // Paper Section 3.3: 13 extra (orange) control bits cost at least
        // 7 * 2 * 13 = 182 T gates. Verify the increment arithmetic: a gate
        // under k >= 2 total controls costs 14 more T per extra control.
        let mut base = GateHistogram::new();
        base.add_mcx(2, 1);
        let under = base.shifted(13);
        assert_eq!(under.t_complexity() - base.t_complexity(), 7 * 2 * 13);
    }

    #[test]
    fn clifford_t_counts_classify_gates() {
        let gates = vec![
            Gate::x(0),
            Gate::cnot(0, 1),
            Gate::toffoli(0, 1, 2),
            Gate::h(0),
            Gate::T(0),
            Gate::Tdg(1),
            Gate::S(2),
        ];
        let counts = CliffordTCounts::of_gates(&gates);
        assert_eq!(counts.x, 1);
        assert_eq!(counts.cnot, 1);
        assert_eq!(counts.toffoli, 1);
        assert_eq!(counts.t_count(), 2 + 7);
        assert_eq!(counts.total(), 7);
    }

    #[test]
    fn scaled_multiplies_all_entries() {
        let mut hist = GateHistogram::new();
        hist.add_mcx(3, 2);
        hist.add_mch(1, 1);
        let tripled = hist.scaled(3);
        assert_eq!(tripled.mcx_count(3), 6);
        assert_eq!(tripled.mch_count(1), 3);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let hist = GateHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.t_complexity(), 0);
        assert_eq!(hist.mcx_complexity(), 0);
        assert_eq!(hist.max_controls(), 0);
    }
}
