//! Quantum circuit substrate for the Spire reproduction.
//!
//! This crate implements every circuit-level system that the paper
//! *The T-Complexity Costs of Error Correction for Control Flow in Quantum
//! Computation* (Yuan & Carbin, PLDI 2024) depends on:
//!
//! * [`Gate`] — multiply-controlled NOT (MCX) and Hadamard (MCH) gates plus
//!   the Clifford+T phase gates, the two gate levels the paper reasons about.
//! * [`Circuit`] — a gate list with qubit accounting, inversion, and control
//!   extension (the circuit semantics of a quantum `if`).
//! * [`GateHistogram`] — an MCX-arity histogram from which both the
//!   MCX-complexity and the T-complexity of a circuit are computed without
//!   materializing its Clifford+T decomposition (paper Figures 5 and 6).
//! * [`decompose`] — the Barenco MCX→Toffoli decomposition (Figure 5) and
//!   the standard 7-T Toffoli→Clifford+T decomposition (Figure 6).
//! * [`qcformat`] — reader/writer for the `.qc` circuit format
//!   (Mosca 2016) that the Tower compiler emits.
//! * [`json`] — the workspace's minimal JSON value model (writer and
//!   parser), shared by the report serializers and the serving layer.
//! * [`sim`] — three interchangeable simulation backends behind the
//!   [`sim::Simulator`] trait: a classical reversible simulator for MCX
//!   circuits, a dense state-vector simulator, and a sparse amplitude-map
//!   simulator that scales with the support of the state (what the
//!   differential-testing harness uses to equivalence-check compiled
//!   programs at paper-sized qubit counts, Theorems 6.3 and 6.5).
//!
//! # Example
//!
//! ```
//! use qcirc::{Circuit, Gate};
//!
//! // Build the circuit of paper Figure 16: an X on `a` under three controls.
//! let mut circuit = Circuit::new(5);
//! circuit.push(Gate::mcx(vec![0, 1, 2], 4));
//!
//! let hist = circuit.histogram();
//! assert_eq!(hist.mcx_complexity(), 1);
//! // One MCX with 3 controls costs 7 * (2*(3-2)+1) = 21 T gates.
//! assert_eq!(hist.t_complexity(), 21);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod circuit;
mod error;
mod gate;
mod histogram;
mod sink;

pub mod decompose;
pub mod hash;
pub mod json;
pub mod qcformat;
pub mod sim;

pub use circuit::{Circuit, Footprint, GateIter, RawDefect};
pub use error::QcircError;
pub use gate::{Gate, GateKind, GateView, Qubit};
pub use histogram::{
    ancillas_of_mcx, t_of_mch, t_of_mcx, toffolis_of_mcx, CliffordTCounts, GateHistogram,
};
pub use sink::{CountingSink, GateSink};
