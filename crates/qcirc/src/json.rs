//! Minimal JSON value model: writer **and** parser, no dependencies.
//!
//! Every machine-readable artifact this workspace emits — report JSON,
//! gate-histogram serializations, the perf trajectories, and the
//! `spire-serve` request/response bodies — goes through this one module,
//! replacing the ad-hoc `format!`-built JSON strings that used to live in
//! `bench_suite::report`. The parser exists because the serving layer
//! must *decode* untrusted request bodies, so it is defensive: it caps
//! nesting depth, rejects trailing garbage, and reports byte offsets in
//! its errors.
//!
//! The value model is deliberately small:
//!
//! * objects preserve insertion order (`Vec<(String, Json)>`), so
//!   serialization is deterministic and byte-stable across runs;
//! * integers keep their full `i64`/`u64` precision (gate counts exceed
//!   the `f64` 53-bit mantissa at paper scale in principle), and numbers
//!   that fit an integer parse as one;
//! * writing is compact (no whitespace), matching the committed report
//!   artifacts.
//!
//! # Example
//!
//! ```
//! use qcirc::json::Json;
//!
//! let value = Json::obj()
//!     .field("name", "length")
//!     .field("t_complexity", 42980u64)
//!     .field("fit", Json::Null)
//!     .build();
//! let text = value.to_string();
//! assert_eq!(text, r#"{"name":"length","t_complexity":42980,"fit":null}"#);
//! assert_eq!(qcirc::json::parse(&text).unwrap(), value);
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts. Deep enough for any artifact
/// this workspace produces, shallow enough that a hostile request body
/// cannot overflow the stack.
const MAX_DEPTH: usize = 96;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer (any number written without `.`/`e` that fits).
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// Any other number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Start building an object (see the module example).
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Build an array value from anything iterable over `Into<Json>`.
    pub fn array(items: impl IntoIterator<Item = impl Into<Json>>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }

    /// Member of an object by key (first occurrence), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element of an array by index, if this is an array.
    pub fn item(&self, index: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(i) => u64::try_from(i).ok(),
            Json::UInt(u) => Some(u),
            _ => None,
        }
    }

    /// The value as an `i64`, when it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(i) => Some(i),
            Json::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, for any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::UInt(u) => Some(u as f64),
            Json::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Append the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_float(out, *f),
            Json::Str(s) => escape_into(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Builder for [`Json::Object`] values (see [`Json::obj`]).
#[derive(Debug, Default)]
pub struct ObjBuilder(Vec<(String, Json)>);

impl ObjBuilder {
    /// Append one field.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.0.push((key.into(), value.into()));
        self
    }

    /// Finish the object.
    pub fn build(self) -> Json {
        Json::Object(self.0)
    }
}

impl From<ObjBuilder> for Json {
    fn from(builder: ObjBuilder) -> Json {
        builder.build()
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<i32> for Json {
    fn from(i: i32) -> Json {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        match i64::try_from(u) {
            Ok(i) => Json::Int(i),
            Err(_) => Json::UInt(u),
        }
    }
}

impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::Int(u as i64)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::from(u as u64)
    }
}

impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(opt: Option<T>) -> Json {
        opt.map_or(Json::Null, Into::into)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

impl FromIterator<Json> for Json {
    fn from_iter<I: IntoIterator<Item = Json>>(iter: I) -> Json {
        Json::Array(iter.into_iter().collect())
    }
}

/// Append `s` as a quoted, escaped JSON string literal to `out`.
pub fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a quoted, escaped JSON string literal.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Write a float so that parsing it back yields the same value and the
/// same [`Json`] variant: Rust's shortest-roundtrip `Display` output,
/// with `.0` appended when it would otherwise read back as an integer.
/// Non-finite values have no JSON spelling and serialize as `null`.
fn write_float(out: &mut String, f: f64) {
    use std::fmt::Write as _;
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{f}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Description of the failure.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON document.
///
/// Trailing non-whitespace input is an error, as is nesting deeper than an
/// internal cap (a request-body hardening measure).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')
            .map_err(|_| self.error("expected string"))?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes, copied as one str slice.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Safety of from_utf8: the input is a &str and the scan
                // only stops on ASCII boundaries, so the slice is valid
                // UTF-8 by construction.
                out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonError> {
        let c = self
            .peek()
            .ok_or_else(|| self.error("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let unit = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&unit) {
                    // High surrogate: require a low surrogate escape next.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')
                            .map_err(|_| self.error("expected low surrogate escape"))?;
                        let low = self.hex4()?;
                        if !(0xDC00..0xE000).contains(&low) {
                            return Err(self.error("invalid low surrogate"));
                        }
                        let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                        char::from_u32(code).ok_or_else(|| self.error("invalid surrogate pair"))?
                    } else {
                        return Err(self.error("unpaired high surrogate"));
                    }
                } else if (0xDC00..0xE000).contains(&unit) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    char::from_u32(unit).ok_or_else(|| self.error("invalid \\u escape"))?
                };
                out.push(ch);
            }
            other => return Err(self.error(format!("invalid escape `\\{}`", other as char))),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .and_then(|c| (c as char).to_digit(16))
                .ok_or_else(|| self.error("expected four hex digits"))?;
            value = value * 16 + c;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        let mut is_integer = true;
        if self.peek() == Some(b'.') {
            is_integer = false;
            self.pos += 1;
            let frac_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after `.`"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_integer = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        // The lexed slice is pure ASCII by construction.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_integer {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        match text.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(JsonError {
                offset: start,
                message: format!("number out of range: `{text}`"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) -> Json {
        parse(&value.to_string()).expect("own output parses")
    }

    #[test]
    fn scalars_roundtrip() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::UInt(u64::MAX),
            Json::Float(1.5),
            Json::Float(-0.25),
            Json::Str("hello \"world\"\n\t\\ \u{1}\u{1F600}".into()),
        ] {
            assert_eq!(roundtrip(&value), value, "{value}");
        }
    }

    #[test]
    fn integral_floats_stay_floats() {
        let value = Json::Float(2.0);
        assert_eq!(value.to_string(), "2.0");
        assert_eq!(roundtrip(&value), value);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_standard_document() {
        let doc = r#" {
            "name": "length" ,
            "depth": 10,
            "ratio": 1.25e2,
            "fit": null,
            "flags": [true, false],
            "nested": {"unicode": "\u0041\ud83d\ude00"}
        } "#;
        let value = parse(doc).unwrap();
        assert_eq!(value.get("name").and_then(Json::as_str), Some("length"));
        assert_eq!(value.get("depth").and_then(Json::as_u64), Some(10));
        assert_eq!(value.get("ratio").and_then(Json::as_f64), Some(125.0));
        assert!(value.get("fit").unwrap().is_null());
        assert_eq!(
            value.get("flags").and_then(|f| f.item(0)).unwrap(),
            &Json::Bool(true)
        );
        assert_eq!(
            value
                .get("nested")
                .and_then(|n| n.get("unicode"))
                .and_then(Json::as_str),
            Some("A\u{1F600}")
        );
    }

    #[test]
    fn big_unsigned_integers_survive() {
        let text = u64::MAX.to_string();
        assert_eq!(parse(&text).unwrap(), Json::UInt(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "[1] x",
            "\"unterminated",
            "01e",
            "1.",
            "nul",
            "+1",
            "{a:1}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn object_builder_preserves_order() {
        let value = Json::obj()
            .field("z", 1u64)
            .field("a", "x")
            .field("opt", Some(3i64))
            .field("none", None::<i64>)
            .build();
        assert_eq!(value.to_string(), r#"{"z":1,"a":"x","opt":3,"none":null}"#);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("{\"a\": 1, }").unwrap_err();
        assert_eq!(err.offset, 9);
        assert!(err.to_string().contains("byte 9"));
    }
}
