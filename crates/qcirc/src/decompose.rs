//! Gate decompositions: MCX → Toffoli (paper Figure 5) and Toffoli →
//! Clifford+T (paper Figure 6).
//!
//! The MCX decomposition is the Barenco et al. V-chain: an MCX with
//! `c ≥ 3` controls computes a chain of conjunctions into `c-2` clean
//! ancillas with `c-2` Toffoli gates, applies one Toffoli to the target,
//! and uncomputes the chain, for `2(c-2)+1` Toffolis total. Ancillas are
//! drawn deterministically from a pool starting at the input circuit's
//! qubit count, so two structurally equal MCX gates decompose to *equal*
//! Toffoli sequences — the property that lets Toffoli-level optimizers
//! (paper Section 8.5) cancel the redundant chains of Figure 16.
//!
//! The Toffoli decomposition is the standard 7-T-gate network, and the
//! controlled Hadamard uses the 2-T-gate network `S·H·T·CX·T†·H·S†`.
//!
//! # Example
//!
//! ```
//! use qcirc::{Circuit, Gate, decompose};
//!
//! let mut circuit = Circuit::new(4);
//! circuit.push(Gate::mcx(vec![0, 1, 2], 3));
//!
//! let toffoli_level = decompose::mcx_to_toffoli(&circuit);
//! assert_eq!(toffoli_level.len(), 3); // 2(3-2)+1 Toffolis
//!
//! let clifford_t = decompose::to_clifford_t(&circuit).unwrap();
//! assert_eq!(clifford_t.clifford_t_counts().t_count(), 21);
//! ```

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateKind, GateView, Qubit};
use crate::sink::GateSink;

/// Decompose every MCX gate with three or more controls into Toffoli gates
/// (Figure 5) and every multiply-controlled Hadamard into Toffolis plus one
/// controlled Hadamard.
///
/// Ancilla qubits are appended after the circuit's existing qubits; the same
/// ancillas are reused by every gate (each decomposition restores them to
/// zero).
pub fn mcx_to_toffoli(circuit: &Circuit) -> Circuit {
    let ancilla_base = circuit.num_qubits();
    let mut out = Circuit::new(circuit.num_qubits());
    for view in circuit {
        emit_toffoli_level_view(view, ancilla_base, &mut out);
    }
    out
}

/// Stream one MCX-level gate into `sink` at the Toffoli level.
pub fn emit_toffoli_level<S: GateSink>(gate: &Gate, ancilla_base: Qubit, sink: &mut S) {
    emit_toffoli_level_view(gate.as_view(), ancilla_base, sink);
}

/// Push a Toffoli onto `sink` without materializing a [`Gate`] (the
/// controls live on the stack; `a < b` need not hold).
fn push_toffoli<S: GateSink>(a: Qubit, b: Qubit, target: Qubit, sink: &mut S) {
    let controls = if a <= b { [a, b] } else { [b, a] };
    sink.push_view(GateView {
        kind: GateKind::Mcx,
        controls: &controls,
        target,
    });
}

/// Stream one MCX-level gate (as a view) into `sink` at the Toffoli level,
/// allocation-free.
pub fn emit_toffoli_level_view<S: GateSink>(view: GateView<'_>, ancilla_base: Qubit, sink: &mut S) {
    let controls = view.controls;
    match view.kind {
        GateKind::Mcx if controls.len() <= 2 => sink.push_view(view),
        GateKind::Mcx => {
            let chain_len = controls.len() - 2;
            emit_conjunction_chain(controls, ancilla_base, chain_len, false, sink);
            let top = ancilla_base + (controls.len() as Qubit - 3);
            push_toffoli(top, controls[controls.len() - 1], view.target, sink);
            emit_conjunction_chain(controls, ancilla_base, chain_len, true, sink);
        }
        GateKind::Mch if controls.len() <= 1 => sink.push_view(view),
        GateKind::Mch => {
            let chain_len = controls.len() - 1;
            emit_conjunction_chain(controls, ancilla_base, chain_len, false, sink);
            let top = ancilla_base + (controls.len() as Qubit - 2);
            let cs = [top];
            sink.push_view(GateView {
                kind: GateKind::Mch,
                controls: &cs,
                target: view.target,
            });
            emit_conjunction_chain(controls, ancilla_base, chain_len, true, sink);
        }
        _ => sink.push_view(view),
    }
}

/// Emit the Toffoli chain computing conjunctions of a control set into
/// ancillas (`a_1 = c_1 ∧ c_2`, `a_i = a_{i-1} ∧ c_{i+1}` for `i < len`),
/// in forward or reverse order, without building an intermediate vector.
fn emit_conjunction_chain<S: GateSink>(
    controls: &[Qubit],
    ancilla_base: Qubit,
    len: usize,
    reversed: bool,
    sink: &mut S,
) {
    debug_assert!(len >= 1 && len < controls.len().max(2));
    let emit_one = |i: usize, sink: &mut S| {
        if i == 0 {
            push_toffoli(controls[0], controls[1], ancilla_base, sink);
        } else {
            push_toffoli(
                ancilla_base + i as Qubit - 1,
                controls[i + 1],
                ancilla_base + i as Qubit,
                sink,
            );
        }
    };
    if reversed {
        for i in (0..len).rev() {
            emit_one(i, sink);
        }
    } else {
        for i in 0..len {
            emit_one(i, sink);
        }
    }
}

/// Number of ancillas [`mcx_to_toffoli`] needs for a circuit: the maximum
/// over its gates of the per-gate ancilla requirement.
pub fn ancillas_needed(circuit: &Circuit) -> u32 {
    circuit
        .iter()
        .map(|v| match v.kind {
            GateKind::Mcx => v.controls.len().saturating_sub(2) as u32,
            GateKind::Mch => v.controls.len().saturating_sub(1) as u32,
            _ => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Decompose a Toffoli-level circuit (MCX arity ≤ 2, MCH arity ≤ 1) into the
/// Clifford+T gate set.
///
/// # Errors
///
/// Returns [`QcircError::ArityTooLarge`] if a gate with more controls
/// remains; run [`mcx_to_toffoli`] first.
pub fn toffoli_to_clifford_t(circuit: &Circuit) -> Result<Circuit, QcircError> {
    let mut out = Circuit::new(circuit.num_qubits());
    for view in circuit {
        match view.kind {
            GateKind::Mcx => match view.controls[..] {
                [] | [_] => out.push_view(view),
                [a, b] => emit_toffoli_7t(a, b, view.target, &mut out),
                _ => {
                    return Err(QcircError::ArityTooLarge {
                        max: 2,
                        found: view.controls.len(),
                    })
                }
            },
            GateKind::Mch => match view.controls[..] {
                [] => out.push_view(view),
                [c] => emit_controlled_h(c, view.target, &mut out),
                _ => {
                    return Err(QcircError::ArityTooLarge {
                        max: 1,
                        found: view.controls.len(),
                    })
                }
            },
            _ => out.push_view(view),
        }
    }
    Ok(out)
}

/// Fully lower an MCX-level circuit to the Clifford+T gate set
/// (Figure 5 followed by Figure 6).
///
/// # Errors
///
/// Propagates decomposition errors; none occur for well-formed MCX circuits.
pub fn to_clifford_t(circuit: &Circuit) -> Result<Circuit, QcircError> {
    toffoli_to_clifford_t(&mcx_to_toffoli(circuit))
}

/// Push an uncontrolled or singly-controlled gate view (no allocation).
fn push_small<S: GateSink>(kind: GateKind, control: Option<Qubit>, target: Qubit, sink: &mut S) {
    match control {
        Some(c) => {
            let cs = [c];
            sink.push_view(GateView {
                kind,
                controls: &cs,
                target,
            });
        }
        None => sink.push_view(GateView {
            kind,
            controls: &[],
            target,
        }),
    }
}

/// The standard 7-T-gate Clifford+T network for a Toffoli gate
/// (paper Figure 6).
pub fn emit_toffoli_7t<S: GateSink>(a: Qubit, b: Qubit, t: Qubit, sink: &mut S) {
    push_small(GateKind::Mch, None, t, sink);
    push_small(GateKind::Mcx, Some(b), t, sink);
    push_small(GateKind::Tdg, None, t, sink);
    push_small(GateKind::Mcx, Some(a), t, sink);
    push_small(GateKind::T, None, t, sink);
    push_small(GateKind::Mcx, Some(b), t, sink);
    push_small(GateKind::Tdg, None, t, sink);
    push_small(GateKind::Mcx, Some(a), t, sink);
    push_small(GateKind::T, None, b, sink);
    push_small(GateKind::T, None, t, sink);
    push_small(GateKind::Mch, None, t, sink);
    push_small(GateKind::Mcx, Some(a), b, sink);
    push_small(GateKind::T, None, a, sink);
    push_small(GateKind::Tdg, None, b, sink);
    push_small(GateKind::Mcx, Some(a), b, sink);
}

/// The 2-T-gate Clifford+T network for a controlled Hadamard:
/// `S·H·T · CX · T†·H·S†` on the target.
pub fn emit_controlled_h<S: GateSink>(c: Qubit, t: Qubit, sink: &mut S) {
    push_small(GateKind::S, None, t, sink);
    push_small(GateKind::Mch, None, t, sink);
    push_small(GateKind::T, None, t, sink);
    push_small(GateKind::Mcx, Some(c), t, sink);
    push_small(GateKind::Tdg, None, t, sink);
    push_small(GateKind::Mch, None, t, sink);
    push_small(GateKind::Sdg, None, t, sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::{t_of_mch, t_of_mcx, toffolis_of_mcx};
    use crate::sim::StateVec;

    /// Apply `circuit` to every basis state of an `n`-qubit register and
    /// compare against `reference` applied to the same states, ignoring the
    /// extra ancilla wires of `circuit` (which must return to zero).
    fn assert_equivalent_on_basis(circuit: &Circuit, reference: &Circuit, n: u32) {
        let total = circuit.num_qubits().max(reference.num_qubits()).max(n);
        for basis in 0..(1u64 << n) {
            let mut lhs = StateVec::basis(total, basis).unwrap();
            lhs.run(circuit).unwrap();
            let mut rhs = StateVec::basis(total, basis).unwrap();
            rhs.run(reference).unwrap();
            assert!(
                lhs.approx_eq_exact(&rhs, 1e-9),
                "decomposition differs on basis state {basis:#b}"
            );
        }
    }

    #[test]
    fn toffoli_7t_is_exact() {
        let mut decomposed = Circuit::new(3);
        emit_toffoli_7t(0, 1, 2, &mut decomposed);
        let mut reference = Circuit::new(3);
        reference.push(Gate::toffoli(0, 1, 2));
        assert_equivalent_on_basis(&decomposed, &reference, 3);
        assert_eq!(decomposed.clifford_t_counts().t_count(), 7);
    }

    #[test]
    fn controlled_h_is_exact() {
        let mut decomposed = Circuit::new(2);
        emit_controlled_h(0, 1, &mut decomposed);
        let mut reference = Circuit::new(2);
        reference.push(Gate::ch(0, 1));
        assert_equivalent_on_basis(&decomposed, &reference, 2);
        assert_eq!(decomposed.clifford_t_counts().t_count(), 2);
    }

    #[test]
    fn mcx3_decomposes_to_three_toffolis() {
        let mut circuit = Circuit::new(4);
        circuit.push(Gate::mcx(vec![0, 1, 2], 3));
        let lowered = mcx_to_toffoli(&circuit);
        assert_eq!(lowered.len(), 3);
        assert_equivalent_on_basis(&lowered, &circuit, 4);
    }

    #[test]
    fn mcx_decomposition_is_exact_up_to_arity_6() {
        for c in 3..=6u32 {
            let controls: Vec<Qubit> = (0..c).collect();
            let mut circuit = Circuit::new(c + 1);
            circuit.push(Gate::mcx(controls, c));
            let lowered = mcx_to_toffoli(&circuit);
            assert_eq!(lowered.len() as u64, toffolis_of_mcx(c as usize));
            assert_equivalent_on_basis(&lowered, &circuit, c + 1);
        }
    }

    #[test]
    fn mch_decomposition_is_exact() {
        for c in 2..=4u32 {
            let controls: Vec<Qubit> = (0..c).collect();
            let mut circuit = Circuit::new(c + 1);
            circuit.push(Gate::mch(controls, c));
            let lowered = mcx_to_toffoli(&circuit);
            assert_equivalent_on_basis(&lowered, &circuit, c + 1);
        }
    }

    #[test]
    fn full_lowering_t_count_matches_histogram_prediction() {
        let mut circuit = Circuit::new(6);
        circuit.push(Gate::mcx(vec![0, 1, 2, 3], 4));
        circuit.push(Gate::toffoli(0, 1, 2));
        circuit.push(Gate::cnot(0, 5));
        circuit.push(Gate::mch(vec![0, 1], 5));
        let predicted = circuit.histogram().t_complexity();
        let lowered = to_clifford_t(&circuit).unwrap();
        let counts = lowered.clifford_t_counts();
        assert_eq!(counts.toffoli, 0);
        assert_eq!(counts.mcx_large, 0);
        assert_eq!(counts.ch, 0);
        assert_eq!(counts.t_count(), predicted);
        assert_eq!(predicted, t_of_mcx(4) + t_of_mcx(2) + t_of_mch(2));
    }

    #[test]
    fn identical_gates_decompose_identically() {
        // The property Toffoli-level cancellation relies on: equal MCX gates
        // produce equal Toffoli sequences (deterministic ancilla choice).
        let mut circuit = Circuit::new(6);
        circuit.push(Gate::mcx(vec![0, 1, 2, 3], 4));
        circuit.push(Gate::mcx(vec![0, 1, 2, 3], 4));
        let lowered = mcx_to_toffoli(&circuit).to_gates();
        let half = lowered.len() / 2;
        assert_eq!(&lowered[..half], &lowered[half..]);
    }

    #[test]
    fn arity_error_reported() {
        let mut circuit = Circuit::new(5);
        circuit.push(Gate::mcx(vec![0, 1, 2], 3));
        let err = toffoli_to_clifford_t(&circuit).unwrap_err();
        assert_eq!(err, QcircError::ArityTooLarge { max: 2, found: 3 });
    }

    #[test]
    fn ancillas_needed_matches_max_arity() {
        let mut circuit = Circuit::new(8);
        circuit.push(Gate::mcx(vec![0, 1, 2, 3, 4], 5)); // needs 3
        circuit.push(Gate::mch(vec![0, 1], 6)); // needs 1
        assert_eq!(ancillas_needed(&circuit), 3);
    }
}
