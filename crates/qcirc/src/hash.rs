//! Minimal stable content hashing (128-bit FNV-1a).
//!
//! The workspace's content-addressing layers — [`Circuit::content_hash`]
//! and the compile cache's key in `spire::cache` — need a hash that is
//! stable across processes and platforms (ruling out `std`'s randomized
//! `DefaultHasher`) without pulling in an external crate. FNV-1a at 128
//! bits is tiny, well-known, and collision-resistant enough for cache
//! keys over kilobyte-sized inputs.
//!
//! [`Circuit::content_hash`]: crate::Circuit::content_hash

/// A streaming 128-bit FNV-1a hasher.
///
/// # Example
///
/// ```
/// use qcirc::hash::Fnv1a128;
///
/// let mut h = Fnv1a128::new();
/// h.write(b"abc");
/// let once = h.finish();
/// assert_eq!(once, Fnv1a128::of(b"abc"));
/// assert_ne!(once, Fnv1a128::of(b"abd"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a128(u128);

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv1a128 {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a128(FNV_OFFSET)
    }

    /// Hash one byte slice from scratch.
    pub fn of(bytes: &[u8]) -> u128 {
        let mut hasher = Fnv1a128::new();
        hasher.write(bytes);
        hasher.finish()
    }

    /// Absorb bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= byte as u128;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, word: u32) {
        self.write(&word.to_le_bytes());
    }

    /// Absorb a byte slice prefixed by its length, so adjacent
    /// variable-length fields cannot collide by concatenation.
    pub fn write_len_prefixed(&mut self, bytes: &[u8]) {
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    /// The current hash value.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv1a128 {
    fn default() -> Self {
        Fnv1a128::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 128-bit test vectors.
        assert_eq!(Fnv1a128::of(b""), FNV_OFFSET);
        assert_eq!(Fnv1a128::of(b"a"), 0xd228cb696f1a8caf78912b704e4a8964);
    }

    #[test]
    fn length_prefix_prevents_concatenation_collisions() {
        let mut ab_c = Fnv1a128::new();
        ab_c.write_len_prefixed(b"ab");
        ab_c.write_len_prefixed(b"c");
        let mut a_bc = Fnv1a128::new();
        a_bc.write_len_prefixed(b"a");
        a_bc.write_len_prefixed(b"bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }
}
