//! Quantum circuits: ordered gate lists with qubit accounting.

use std::fmt;

use crate::gate::{Gate, Qubit};
use crate::histogram::{CliffordTCounts, GateHistogram};
use crate::sink::GateSink;

/// A quantum circuit: an ordered sequence of [`Gate`]s over a fixed number
/// of qubits.
///
/// The qubit count grows automatically when a pushed gate references a qubit
/// beyond the current width, so a circuit can be built without declaring its
/// width in advance.
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
///
/// let mut bell_pair = Circuit::new(2);
/// bell_pair.push(Gate::h(0));
/// bell_pair.push(Gate::cnot(0, 1));
/// assert_eq!(bell_pair.len(), 2);
/// assert_eq!(bell_pair.num_qubits(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Circuit {
    gates: Vec<Gate>,
    num_qubits: u32,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            gates: Vec::new(),
            num_qubits,
        }
    }

    /// Build a circuit from a gate list, sizing the width to fit.
    pub fn from_gates(gates: Vec<Gate>) -> Self {
        let num_qubits = gates.iter().map(|g| g.max_qubit() + 1).max().unwrap_or(0);
        Circuit { gates, num_qubits }
    }

    /// Append a gate, growing the qubit count if needed.
    pub fn push(&mut self, gate: Gate) {
        self.num_qubits = self.num_qubits.max(gate.max_qubit() + 1);
        self.gates.push(gate);
    }

    /// Append all gates of `other`.
    pub fn append(&mut self, other: &Circuit) {
        self.num_qubits = self.num_qubits.max(other.num_qubits);
        self.gates.extend_from_slice(&other.gates);
    }

    /// The gates in execution order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Consume the circuit, returning its gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.gates
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of qubits (wires).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Explicitly widen the circuit to at least `n` qubits.
    pub fn ensure_qubits(&mut self, n: u32) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// Iterate over the gates.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// The inverse circuit: gates reversed, each replaced by its adjoint.
    ///
    /// This realizes the paper's statement-reversal operator `I[s]` at the
    /// circuit level.
    pub fn inverse(&self) -> Circuit {
        Circuit {
            gates: self.gates.iter().rev().map(Gate::adjoint).collect(),
            num_qubits: self.num_qubits,
        }
    }

    /// The same circuit with every gate placed under `extra` additional
    /// controls (the circuit semantics of a quantum `if`, paper Figure 21).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains decomposed phase gates; controls are
    /// only ever added at the MCX level.
    pub fn with_extra_controls(&self, extra: &[Qubit]) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for gate in &self.gates {
            out.push(gate.with_extra_controls(extra));
        }
        out
    }

    /// The MCX-arity histogram of this circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains decomposed phase gates; use
    /// [`Circuit::clifford_t_counts`] for decomposed circuits.
    pub fn histogram(&self) -> GateHistogram {
        let mut hist = GateHistogram::new();
        for gate in &self.gates {
            hist.record(gate);
        }
        hist
    }

    /// Clifford+T-level gate counts for this circuit.
    pub fn clifford_t_counts(&self) -> CliffordTCounts {
        CliffordTCounts::of_gates(&self.gates)
    }

    /// A stable 128-bit content address of the circuit: FNV-1a over the
    /// qubit count and every gate (kind, controls, target), in order.
    ///
    /// Two circuits share a content hash exactly when they are the same
    /// gate list over the same register — the key the experiment
    /// pipeline's memoization layers use to recognize a circuit they
    /// have already processed. Stable across processes and platforms.
    pub fn content_hash(&self) -> u128 {
        let mut hasher = crate::hash::Fnv1a128::new();
        hasher.write_u32(self.num_qubits);
        for gate in &self.gates {
            match gate {
                Gate::Mcx { controls, target } | Gate::Mch { controls, target } => {
                    let kind = if matches!(gate, Gate::Mcx { .. }) {
                        0
                    } else {
                        1
                    };
                    hasher.write_u32(kind);
                    hasher.write_u32(controls.len() as u32);
                    for &control in controls {
                        hasher.write_u32(control);
                    }
                    hasher.write_u32(*target);
                }
                Gate::T(q) => {
                    hasher.write_u32(2);
                    hasher.write_u32(*q);
                }
                Gate::Tdg(q) => {
                    hasher.write_u32(3);
                    hasher.write_u32(*q);
                }
                Gate::S(q) => {
                    hasher.write_u32(4);
                    hasher.write_u32(*q);
                }
                Gate::Sdg(q) => {
                    hasher.write_u32(5);
                    hasher.write_u32(*q);
                }
                Gate::Z(q) => {
                    hasher.write_u32(6);
                    hasher.write_u32(*q);
                }
            }
        }
        hasher.finish()
    }

    /// Total T-count of the circuit under this crate's decompositions,
    /// regardless of which level the circuit is expressed at.
    pub fn t_count(&self) -> u64 {
        self.gates.iter().map(Gate::t_cost).sum()
    }
}

impl GateSink for Circuit {
    fn push_gate(&mut self, gate: Gate) {
        self.push(gate);
    }
}

impl FromIterator<Gate> for Circuit {
    fn from_iter<I: IntoIterator<Item = Gate>>(iter: I) -> Self {
        Circuit::from_gates(iter.into_iter().collect())
    }
}

impl Extend<Gate> for Circuit {
    fn extend<I: IntoIterator<Item = Gate>>(&mut self, iter: I) {
        for gate in iter {
            self.push(gate);
        }
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} qubits, {} gates", self.num_qubits, self.len())?;
        for gate in &self.gates {
            writeln!(f, "{gate}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_qubit_count() {
        let mut c = Circuit::new(1);
        c.push(Gate::toffoli(0, 5, 9));
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::T(1));
        c.push(Gate::cnot(0, 1));
        let inv = c.inverse();
        assert_eq!(inv.gates(), &[Gate::cnot(0, 1), Gate::Tdg(1), Gate::h(0)]);
    }

    #[test]
    fn double_inverse_is_identity() {
        let c: Circuit = vec![Gate::h(0), Gate::S(1), Gate::toffoli(0, 1, 2)]
            .into_iter()
            .collect();
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    fn with_extra_controls_shifts_histogram() {
        let mut c = Circuit::new(3);
        c.push(Gate::x(0));
        c.push(Gate::cnot(1, 0));
        let controlled = c.with_extra_controls(&[2]);
        assert_eq!(controlled.histogram(), c.histogram().shifted(1));
    }

    #[test]
    fn t_count_mixes_levels() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 2)); // 7
        c.push(Gate::T(3)); // 1
        c.push(Gate::S(3)); // 0
        assert_eq!(c.t_count(), 8);
    }

    #[test]
    fn from_gates_sizes_width() {
        let c = Circuit::from_gates(vec![Gate::x(7)]);
        assert_eq!(c.num_qubits(), 8);
        assert_eq!(Circuit::from_gates(Vec::new()).num_qubits(), 0);
    }

    #[test]
    fn content_hash_distinguishes_structure() {
        let a = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::T(2)]);
        let same = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::T(2)]);
        assert_eq!(a.content_hash(), same.content_hash());
        // Gate order, gate kind, operands, and register width all matter.
        let reordered = Circuit::from_gates(vec![Gate::T(2), Gate::cnot(0, 1)]);
        let retargeted = Circuit::from_gates(vec![Gate::cnot(0, 2), Gate::T(2)]);
        let rekinded = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::Tdg(2)]);
        let mut widened = Circuit::new(9);
        widened.push(Gate::cnot(0, 1));
        widened.push(Gate::T(2));
        for other in [&reordered, &retargeted, &rekinded, &widened] {
            assert_ne!(a.content_hash(), other.content_hash());
        }
    }
}
