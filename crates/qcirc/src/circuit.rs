//! Quantum circuits: a footprint-indexed packed gate stream.
//!
//! A [`Circuit`] does **not** store a `Vec<Gate>`. Each gate is a small
//! fixed-size [`PackedOp`] record; control lists of arity ≤ 2 (X, CNOT,
//! Toffoli, H, CH — the overwhelming majority of gates in decomposed
//! circuits) are stored inline, and longer control lists are interned into
//! a per-circuit shared operand arena. Pushing, cloning, iterating,
//! hashing, and `.qc` emission are therefore allocation-free per gate:
//! cloning a million-gate circuit is three `memcpy`s.
//!
//! Every gate additionally carries a precomputed 64-bit *qubit footprint*
//! ([`Footprint`]): for circuits of at most 64 qubits the mask is exact
//! (bit *q* ⇔ the gate touches qubit *q*); wider circuits fold qubit `q`
//! onto bit `q % 64`. Folding preserves the one-sided guarantee the
//! optimizer passes need — **disjoint masks imply disjoint qubit sets** —
//! so a mask test answers the common "do these gates even overlap?"
//! question in one AND, and only mask collisions fall back to an exact
//! check against the sorted operand slices. (An exact multi-word spill
//! was considered and rejected: the paper's depth-10 benchmarks run 300 to
//! 650 qubits wide, which would cost 5–11 words per gate on circuits of
//! ~10⁶ gates; see DESIGN.md.)

use std::fmt;

use crate::gate::{Gate, GateKind, GateView, Qubit};
use crate::histogram::{CliffordTCounts, GateHistogram};
use crate::sink::GateSink;

/// Number of controls stored inline in a [`PackedOp`] before the circuit's
/// operand arena is used.
const INLINE_CONTROLS: usize = 2;

/// A precomputed qubit-footprint bitmask of one gate.
///
/// Obtained from [`Circuit::footprint`] or computed for a free-standing
/// gate with [`Footprint::of_view`]. Bit `q % 64` is set for every qubit
/// `q` the gate touches (controls and target). For registers of ≤ 64
/// qubits this is exact; beyond that it is a conservative fold:
///
/// * [`Footprint::disjoint`] returning `true` **proves** the gates share
///   no qubit;
/// * a `false` (mask collision) must be confirmed against the operand
///   lists, which the `qopt` commutation kernel does on the (sorted,
///   ≤ arity-sized) control slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Footprint(u64);

impl Footprint {
    /// The footprint of a gate view (controls ∪ target).
    pub fn of_view(view: &GateView<'_>) -> Footprint {
        let mut mask = bit(view.target);
        for &c in view.controls {
            mask |= bit(c);
        }
        Footprint(mask)
    }

    /// The raw folded mask.
    pub fn mask(self) -> u64 {
        self.0
    }

    /// Whether the two masks are disjoint. `true` proves the gates touch
    /// disjoint qubit sets; `false` may be a fold collision.
    pub fn disjoint(self, other: Footprint) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether qubit `q` *may* be in this footprint. `false` proves it is
    /// not; `true` may be a fold collision.
    pub fn may_contain(self, q: Qubit) -> bool {
        self.0 & bit(q) != 0
    }
}

#[inline]
fn bit(q: Qubit) -> u64 {
    1u64 << (q % 64)
}

/// One gate of the packed stream: fixed size, `Copy`, no heap pointers.
///
/// `cs` holds the controls inline when `nctrl ≤ 2`; for larger control
/// lists `cs[0]` is the offset of the list in the circuit's operand arena
/// (and `cs[1]` is zero). Equality of two circuits' op vectors plus
/// arenas coincides with gate-for-gate logical equality because the
/// layout is a deterministic function of the pushed gate sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PackedOp {
    kind: GateKind,
    nctrl: u32,
    target: Qubit,
    cs: [u32; 2],
    footprint: Footprint,
}

/// A quantum circuit: an ordered packed sequence of gates over a fixed
/// number of qubits.
///
/// The representation is a footprint-indexed packed gate stream: each
/// gate is a fixed-size record with its control list inline (arity ≤ 2)
/// or interned into a shared per-circuit operand arena, plus a
/// precomputed [`Footprint`] bitmask — so pushing, cloning, iterating
/// ([`GateView`]s), hashing, and emission are allocation-free per gate.
///
/// The qubit count grows automatically when a pushed gate references a qubit
/// beyond the current width, so a circuit can be built without declaring its
/// width in advance.
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
///
/// let mut bell_pair = Circuit::new(2);
/// bell_pair.push(Gate::h(0));
/// bell_pair.push(Gate::cnot(0, 1));
/// assert_eq!(bell_pair.len(), 2);
/// assert_eq!(bell_pair.num_qubits(), 2);
/// let gates: Vec<Gate> = bell_pair.iter().map(|v| v.to_gate()).collect();
/// assert_eq!(gates, vec![Gate::h(0), Gate::cnot(0, 1)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Circuit {
    ops: Vec<PackedOp>,
    arena: Vec<Qubit>,
    num_qubits: u32,
}

impl Circuit {
    /// An empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            ops: Vec::new(),
            arena: Vec::new(),
            num_qubits,
        }
    }

    /// An empty circuit with capacity reserved for `gates` gates.
    pub fn with_capacity(num_qubits: u32, gates: usize) -> Self {
        Circuit {
            ops: Vec::with_capacity(gates),
            arena: Vec::new(),
            num_qubits,
        }
    }

    /// Build a circuit from a gate list, sizing the width to fit.
    pub fn from_gates(gates: Vec<Gate>) -> Self {
        let mut circuit = Circuit::with_capacity(0, gates.len());
        for gate in &gates {
            circuit.push_view(gate.as_view());
        }
        circuit
    }

    /// Append a gate, growing the qubit count if needed.
    pub fn push(&mut self, gate: Gate) {
        self.push_view(gate.as_view());
    }

    /// Append a gate view, growing the qubit count if needed. This is the
    /// allocation-free push: the controls are copied into the circuit's
    /// inline slots or shared arena, never into a fresh heap vector.
    ///
    /// The view's controls must be sorted and duplicate-free (as every
    /// view produced by a [`Gate`] or another [`Circuit`] is).
    pub fn push_view(&mut self, view: GateView<'_>) {
        debug_assert!(
            view.controls.windows(2).all(|w| w[0] < w[1]),
            "controls must be sorted and duplicate-free: {:?}",
            view.controls
        );
        self.num_qubits = self.num_qubits.max(view.max_qubit() + 1);
        let nctrl = view.controls.len();
        let cs = if nctrl <= INLINE_CONTROLS {
            [
                view.controls.first().copied().unwrap_or(0),
                view.controls.get(1).copied().unwrap_or(0),
            ]
        } else {
            let offset = self.arena.len() as u32;
            self.arena.extend_from_slice(view.controls);
            [offset, 0]
        };
        self.ops.push(PackedOp {
            kind: view.kind,
            nctrl: nctrl as u32,
            target: view.target,
            cs,
            footprint: Footprint::of_view(&view),
        });
    }

    /// Append all gates of `other`.
    pub fn append(&mut self, other: &Circuit) {
        self.num_qubits = self.num_qubits.max(other.num_qubits);
        self.ops.reserve(other.ops.len());
        for view in other {
            self.push_view(view);
        }
    }

    /// The view of the `index`-th gate.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn view(&self, index: usize) -> GateView<'_> {
        let op = &self.ops[index];
        GateView {
            kind: op.kind,
            controls: self.controls_of(op),
            target: op.target,
        }
    }

    /// The precomputed footprint of the `index`-th gate.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn footprint(&self, index: usize) -> Footprint {
        self.ops[index].footprint
    }

    fn controls_of<'a>(&'a self, op: &'a PackedOp) -> &'a [Qubit] {
        let n = op.nctrl as usize;
        if n <= INLINE_CONTROLS {
            &op.cs[..n]
        } else {
            &self.arena[op.cs[0] as usize..op.cs[0] as usize + n]
        }
    }

    /// Materialize the gate list (one allocation per controlled gate; for
    /// tests and interop — the hot paths iterate views instead).
    pub fn to_gates(&self) -> Vec<Gate> {
        self.iter().map(|v| v.to_gate()).collect()
    }

    /// Consume the circuit, returning its materialized gate list.
    pub fn into_gates(self) -> Vec<Gate> {
        self.to_gates()
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of qubits (wires).
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Explicitly widen the circuit to at least `n` qubits.
    pub fn ensure_qubits(&mut self, n: u32) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// Iterate over the gates as borrowed views.
    pub fn iter(&self) -> GateIter<'_> {
        GateIter {
            circuit: self,
            index: 0,
        }
    }

    /// The inverse circuit: gates reversed, each replaced by its adjoint.
    ///
    /// This realizes the paper's statement-reversal operator `I[s]` at the
    /// circuit level.
    pub fn inverse(&self) -> Circuit {
        let mut out = Circuit::with_capacity(self.num_qubits, self.len());
        for i in (0..self.len()).rev() {
            let view = self.view(i);
            out.push_view(GateView {
                kind: view.kind.adjoint(),
                ..view
            });
        }
        out
    }

    /// The same circuit with every gate placed under `extra` additional
    /// controls (the circuit semantics of a quantum `if`, paper Figure 21).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains decomposed phase gates; controls are
    /// only ever added at the MCX level.
    pub fn with_extra_controls(&self, extra: &[Qubit]) -> Circuit {
        let mut out = Circuit::new(self.num_qubits);
        for view in self {
            out.push(view.to_gate().with_extra_controls(extra));
        }
        out
    }

    /// The MCX-arity histogram of this circuit.
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains decomposed phase gates; use
    /// [`Circuit::clifford_t_counts`] for decomposed circuits.
    pub fn histogram(&self) -> GateHistogram {
        let mut hist = GateHistogram::new();
        for view in self {
            hist.record_view(&view);
        }
        hist
    }

    /// Clifford+T-level gate counts for this circuit.
    pub fn clifford_t_counts(&self) -> CliffordTCounts {
        let mut counts = CliffordTCounts::default();
        for view in self {
            counts.record_view(&view);
        }
        counts
    }

    /// A stable 128-bit content address of the circuit: FNV-1a over the
    /// qubit count and every gate (kind, controls, target), in order.
    ///
    /// Two circuits share a content hash exactly when they are the same
    /// gate list over the same register — the key the experiment
    /// pipeline's memoization layers use to recognize a circuit they
    /// have already processed. Stable across processes and platforms (and
    /// across the packed-representation refactor: the hashed byte stream
    /// is defined over the logical gate list, not the storage layout).
    pub fn content_hash(&self) -> u128 {
        let mut hasher = crate::hash::Fnv1a128::new();
        hasher.write_u32(self.num_qubits);
        for view in self {
            let kind = match view.kind {
                GateKind::Mcx => 0,
                GateKind::Mch => 1,
                GateKind::T => 2,
                GateKind::Tdg => 3,
                GateKind::S => 4,
                GateKind::Sdg => 5,
                GateKind::Z => 6,
            };
            hasher.write_u32(kind);
            if matches!(view.kind, GateKind::Mcx | GateKind::Mch) {
                hasher.write_u32(view.controls.len() as u32);
                for &control in view.controls {
                    hasher.write_u32(control);
                }
            }
            hasher.write_u32(view.target);
        }
        hasher.finish()
    }

    /// Total T-count of the circuit under this crate's decompositions,
    /// regardless of which level the circuit is expressed at.
    pub fn t_count(&self) -> u64 {
        self.iter().map(|v| v.t_cost()).sum()
    }

    /// Audit the packed representation itself: operand-arena bounds,
    /// control-list ordering, control/target overlap, qubit accounting,
    /// and — the invariant every optimizer pass trusts — that each gate's
    /// precomputed [`Footprint`] equals the mask recomputed from its
    /// operands.
    ///
    /// Every public constructor maintains these invariants, so a non-empty
    /// result means the stream was corrupted (bit flip, bad interop, or a
    /// deliberately broken test fixture). The walk never panics: defective
    /// records are reported, not dereferenced.
    pub fn audit_raw(&self) -> Vec<RawDefect> {
        let mut defects = Vec::new();
        for (index, op) in self.ops.iter().enumerate() {
            let n = op.nctrl as usize;
            let controls: &[Qubit] = if n <= INLINE_CONTROLS {
                &op.cs[..n]
            } else {
                let offset = op.cs[0] as usize;
                match self.arena.get(offset..offset + n) {
                    Some(slice) => slice,
                    None => {
                        defects.push(RawDefect::ArenaOutOfBounds {
                            index,
                            offset: op.cs[0],
                            nctrl: op.nctrl,
                            arena_len: self.arena.len(),
                        });
                        continue;
                    }
                }
            };
            for pair in controls.windows(2) {
                if pair[0] >= pair[1] {
                    defects.push(RawDefect::UnsortedControls {
                        index,
                        first: pair[0],
                        second: pair[1],
                    });
                }
            }
            if controls.contains(&op.target) {
                defects.push(RawDefect::ControlTargetOverlap {
                    index,
                    qubit: op.target,
                });
            }
            let mut max_qubit = op.target;
            let mut mask = bit(op.target);
            for &c in controls {
                max_qubit = max_qubit.max(c);
                mask |= bit(c);
            }
            if max_qubit >= self.num_qubits {
                defects.push(RawDefect::QubitOutOfRange {
                    index,
                    qubit: max_qubit,
                    width: self.num_qubits,
                });
            }
            if op.footprint.0 != mask {
                defects.push(RawDefect::FootprintMismatch {
                    index,
                    stored: op.footprint.0,
                    recomputed: mask,
                });
            }
        }
        defects
    }

    /// Overwrite the stored footprint of the `index`-th gate.
    ///
    /// Fixture hook for negative tests of [`Circuit::audit_raw`]: it
    /// deliberately breaks the footprint invariant that every public
    /// constructor maintains. Never call this outside a test corpus.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[doc(hidden)]
    pub fn corrupt_footprint_for_test(&mut self, index: usize, mask: u64) {
        self.ops[index].footprint = Footprint(mask);
    }

    /// Overwrite the arena offset of the `index`-th gate.
    ///
    /// Fixture hook for negative tests of [`Circuit::audit_raw`]; only
    /// meaningful for gates with more than two controls (whose control
    /// list lives in the arena). Never call this outside a test corpus.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[doc(hidden)]
    pub fn corrupt_arena_offset_for_test(&mut self, index: usize, offset: u32) {
        self.ops[index].cs[0] = offset;
    }

    /// Push a gate record verbatim, bypassing the control-list
    /// normalization (sorting, deduplication, overlap assertions) that
    /// [`Gate`]'s constructors perform.
    ///
    /// Fixture hook for building deliberately malformed streams (for
    /// example a gate whose target is also a control) that exercise
    /// [`Circuit::audit_raw`] and the static verifier. The stored
    /// footprint is still computed from the operands, so only the
    /// invariants the caller chooses to break are broken. Never call this
    /// outside a test corpus.
    #[doc(hidden)]
    pub fn push_raw_for_test(&mut self, kind: GateKind, controls: &[Qubit], target: Qubit) {
        let mut max_qubit = target;
        let mut mask = bit(target);
        for &c in controls {
            max_qubit = max_qubit.max(c);
            mask |= bit(c);
        }
        self.num_qubits = self.num_qubits.max(max_qubit + 1);
        let nctrl = controls.len();
        let cs = if nctrl <= INLINE_CONTROLS {
            [
                controls.first().copied().unwrap_or(0),
                controls.get(1).copied().unwrap_or(0),
            ]
        } else {
            let offset = self.arena.len() as u32;
            self.arena.extend_from_slice(controls);
            [offset, 0]
        };
        self.ops.push(PackedOp {
            kind,
            nctrl: nctrl as u32,
            target,
            cs,
            footprint: Footprint(mask),
        });
    }
}

/// A structural defect in a circuit's packed gate stream, reported by
/// [`Circuit::audit_raw`].
///
/// `index` is always the position of the defective gate in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawDefect {
    /// A gate's control list points outside the operand arena.
    ArenaOutOfBounds {
        /// Gate position.
        index: usize,
        /// Claimed arena offset.
        offset: u32,
        /// Claimed control count.
        nctrl: u32,
        /// Actual arena length.
        arena_len: usize,
    },
    /// Adjacent controls out of order (or duplicated).
    UnsortedControls {
        /// Gate position.
        index: usize,
        /// Earlier control.
        first: Qubit,
        /// Later control (≤ the earlier one).
        second: Qubit,
    },
    /// The target also appears in the control list.
    ControlTargetOverlap {
        /// Gate position.
        index: usize,
        /// The shared qubit.
        qubit: Qubit,
    },
    /// A gate references a qubit at or beyond the circuit's width.
    QubitOutOfRange {
        /// Gate position.
        index: usize,
        /// The out-of-range qubit.
        qubit: Qubit,
        /// The circuit's claimed width.
        width: u32,
    },
    /// The stored footprint differs from the mask recomputed from the
    /// gate's operands.
    FootprintMismatch {
        /// Gate position.
        index: usize,
        /// Stored mask.
        stored: u64,
        /// Mask recomputed from the operands.
        recomputed: u64,
    },
}

impl GateSink for Circuit {
    fn push_gate(&mut self, gate: Gate) {
        self.push(gate);
    }

    fn push_view(&mut self, view: GateView<'_>) {
        Circuit::push_view(self, view);
    }
}

impl FromIterator<Gate> for Circuit {
    fn from_iter<I: IntoIterator<Item = Gate>>(iter: I) -> Self {
        let mut circuit = Circuit::new(0);
        circuit.extend(iter);
        circuit
    }
}

impl Extend<Gate> for Circuit {
    fn extend<I: IntoIterator<Item = Gate>>(&mut self, iter: I) {
        for gate in iter {
            self.push(gate);
        }
    }
}

/// Iterator over a circuit's gates as [`GateView`]s (see
/// [`Circuit::iter`]).
#[derive(Debug, Clone)]
pub struct GateIter<'a> {
    circuit: &'a Circuit,
    index: usize,
}

impl<'a> Iterator for GateIter<'a> {
    type Item = GateView<'a>;

    fn next(&mut self) -> Option<GateView<'a>> {
        if self.index < self.circuit.len() {
            let view = self.circuit.view(self.index);
            self.index += 1;
            Some(view)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.circuit.len() - self.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for GateIter<'_> {}

impl<'a> IntoIterator for &'a Circuit {
    type Item = GateView<'a>;
    type IntoIter = GateIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {} qubits, {} gates", self.num_qubits, self.len())?;
        for view in self {
            writeln!(f, "{view}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_qubit_count() {
        let mut c = Circuit::new(1);
        c.push(Gate::toffoli(0, 5, 9));
        assert_eq!(c.num_qubits(), 10);
    }

    #[test]
    fn views_roundtrip_all_arities() {
        let gates = vec![
            Gate::x(0),
            Gate::cnot(1, 2),
            Gate::toffoli(0, 1, 2),
            Gate::mcx(vec![0, 1, 2], 3),
            Gate::mcx(vec![0, 1, 2, 3, 4], 5),
            Gate::h(1),
            Gate::ch(0, 1),
            Gate::mch(vec![0, 1, 2], 3),
            Gate::T(4),
            Gate::Tdg(4),
            Gate::S(0),
            Gate::Sdg(0),
            Gate::Z(2),
        ];
        let circuit = Circuit::from_gates(gates.clone());
        assert_eq!(circuit.to_gates(), gates);
        for (i, gate) in gates.iter().enumerate() {
            assert_eq!(circuit.view(i), gate.as_view());
            assert_eq!(
                circuit.footprint(i),
                Footprint::of_view(&gate.as_view()),
                "footprint of {gate}"
            );
        }
    }

    #[test]
    fn equality_is_gate_for_gate() {
        let a = Circuit::from_gates(vec![Gate::mcx(vec![0, 1, 2], 3), Gate::T(0)]);
        let b = Circuit::from_gates(vec![Gate::mcx(vec![0, 1, 2], 3), Gate::T(0)]);
        assert_eq!(a, b);
        let c = Circuit::from_gates(vec![Gate::mcx(vec![0, 1, 3], 2), Gate::T(0)]);
        assert_ne!(a, c);
    }

    #[test]
    fn footprint_disjointness_is_sound() {
        // Exact below 64 qubits.
        let a = Footprint::of_view(&Gate::toffoli(0, 1, 2).as_view());
        let b = Footprint::of_view(&Gate::cnot(3, 4).as_view());
        assert!(a.disjoint(b));
        assert!(!a.disjoint(Footprint::of_view(&Gate::x(1).as_view())));
        assert!(a.may_contain(2));
        assert!(!a.may_contain(5));
        // Folded above 64 qubits: overlap is always detected (q and q+64
        // may collide, but a shared qubit always collides).
        let wide = Footprint::of_view(&Gate::cnot(70, 131).as_view());
        assert!(!wide.disjoint(Footprint::of_view(&Gate::x(131).as_view())));
        assert!(wide.may_contain(70));
    }

    #[test]
    fn inverse_reverses_and_adjoints() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::T(1));
        c.push(Gate::cnot(0, 1));
        let inv = c.inverse();
        assert_eq!(
            inv.to_gates(),
            vec![Gate::cnot(0, 1), Gate::Tdg(1), Gate::h(0)]
        );
    }

    #[test]
    fn double_inverse_is_identity() {
        let c: Circuit = vec![Gate::h(0), Gate::S(1), Gate::toffoli(0, 1, 2)]
            .into_iter()
            .collect();
        assert_eq!(c.inverse().inverse(), c);
    }

    #[test]
    fn with_extra_controls_shifts_histogram() {
        let mut c = Circuit::new(3);
        c.push(Gate::x(0));
        c.push(Gate::cnot(1, 0));
        let controlled = c.with_extra_controls(&[2]);
        assert_eq!(controlled.histogram(), c.histogram().shifted(1));
    }

    #[test]
    fn t_count_mixes_levels() {
        let mut c = Circuit::new(4);
        c.push(Gate::toffoli(0, 1, 2)); // 7
        c.push(Gate::T(3)); // 1
        c.push(Gate::S(3)); // 0
        assert_eq!(c.t_count(), 8);
    }

    #[test]
    fn from_gates_sizes_width() {
        let c = Circuit::from_gates(vec![Gate::x(7)]);
        assert_eq!(c.num_qubits(), 8);
        assert_eq!(Circuit::from_gates(Vec::new()).num_qubits(), 0);
    }

    #[test]
    fn append_carries_arena_gates_across() {
        let mut a = Circuit::from_gates(vec![Gate::mcx(vec![0, 1, 2, 3], 4)]);
        let b = Circuit::from_gates(vec![Gate::mcx(vec![1, 2, 3, 4], 5), Gate::x(0)]);
        a.append(&b);
        assert_eq!(
            a.to_gates(),
            vec![
                Gate::mcx(vec![0, 1, 2, 3], 4),
                Gate::mcx(vec![1, 2, 3, 4], 5),
                Gate::x(0),
            ]
        );
    }

    #[test]
    fn content_hash_distinguishes_structure() {
        let a = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::T(2)]);
        let same = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::T(2)]);
        assert_eq!(a.content_hash(), same.content_hash());
        // Gate order, gate kind, operands, and register width all matter.
        let reordered = Circuit::from_gates(vec![Gate::T(2), Gate::cnot(0, 1)]);
        let retargeted = Circuit::from_gates(vec![Gate::cnot(0, 2), Gate::T(2)]);
        let rekinded = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::Tdg(2)]);
        let mut widened = Circuit::new(9);
        widened.push(Gate::cnot(0, 1));
        widened.push(Gate::T(2));
        for other in [&reordered, &retargeted, &rekinded, &widened] {
            assert_ne!(a.content_hash(), other.content_hash());
        }
    }

    #[test]
    fn audit_accepts_every_constructed_circuit() {
        let c = Circuit::from_gates(vec![
            Gate::x(0),
            Gate::cnot(1, 2),
            Gate::mcx(vec![0, 1, 2, 3, 4], 5),
            Gate::h(1),
            Gate::T(4),
        ]);
        assert!(c.audit_raw().is_empty());
    }

    #[test]
    fn audit_reports_corrupted_footprint() {
        let mut c = Circuit::from_gates(vec![Gate::toffoli(0, 1, 2), Gate::x(3)]);
        c.corrupt_footprint_for_test(0, 0b1000);
        let defects = c.audit_raw();
        assert_eq!(defects.len(), 1);
        assert!(matches!(
            defects[0],
            RawDefect::FootprintMismatch {
                index: 0,
                stored: 0b1000,
                recomputed: 0b111,
            }
        ));
    }

    #[test]
    fn audit_reports_arena_out_of_bounds() {
        let mut c = Circuit::from_gates(vec![Gate::mcx(vec![0, 1, 2, 3], 4)]);
        c.corrupt_arena_offset_for_test(0, 1000);
        assert!(matches!(
            c.audit_raw()[0],
            RawDefect::ArenaOutOfBounds { index: 0, .. }
        ));
    }

    #[test]
    fn audit_reports_overlap_and_ordering() {
        let mut c = Circuit::new(4);
        c.push_raw_for_test(GateKind::Mcx, &[0, 0], 1);
        c.push_raw_for_test(GateKind::Mcx, &[2], 2);
        let defects = c.audit_raw();
        assert!(defects
            .iter()
            .any(|d| matches!(d, RawDefect::UnsortedControls { index: 0, .. })));
        assert!(defects
            .iter()
            .any(|d| matches!(d, RawDefect::ControlTargetOverlap { index: 1, qubit: 2 })));
    }

    #[test]
    fn content_hash_is_stable_across_representations() {
        // Pinned value: the hash is defined over the logical gate stream,
        // so a change to the packed layout must not change it (the
        // experiment memo keys and any on-disk uses depend on this).
        let c = Circuit::from_gates(vec![Gate::cnot(0, 1), Gate::T(2)]);
        let mut reference = crate::hash::Fnv1a128::new();
        for word in [3u32, 0, 1, 0, 1, 2, 2] {
            reference.write_u32(word);
        }
        assert_eq!(c.content_hash(), reference.finish());
    }
}
