//! Streaming gate sinks.
//!
//! Compiling the paper's radix-tree benchmarks at depth 10 produces circuits
//! with on the order of 10⁹ T gates (paper Appendix E); materializing them
//! is infeasible. Code generation therefore emits into a [`GateSink`], and
//! experiments that only need gate counts use a [`CountingSink`] which
//! accumulates the arity histogram in constant space. Experiments that run
//! circuit optimizers materialize into a [`Circuit`](crate::Circuit), which
//! also implements [`GateSink`].

use crate::gate::{Gate, GateView, Qubit};
use crate::histogram::GateHistogram;

/// A consumer of a stream of gates.
pub trait GateSink {
    /// Consume one gate.
    fn push_gate(&mut self, gate: Gate);

    /// Consume one gate by view. Sinks that can store a view without
    /// materializing a [`Gate`] (the packed [`Circuit`](crate::Circuit),
    /// [`CountingSink`]) override this to keep streaming emission
    /// allocation-free; the default materializes.
    fn push_view(&mut self, view: GateView<'_>) {
        self.push_gate(view.to_gate());
    }
}

impl GateSink for Vec<Gate> {
    fn push_gate(&mut self, gate: Gate) {
        self.push(gate);
    }
}

impl<S: GateSink + ?Sized> GateSink for &mut S {
    fn push_gate(&mut self, gate: Gate) {
        (**self).push_gate(gate);
    }

    fn push_view(&mut self, view: GateView<'_>) {
        (**self).push_view(view);
    }
}

/// A [`GateSink`] that counts gates into a [`GateHistogram`] without storing
/// them.
///
/// # Example
///
/// ```
/// use qcirc::{CountingSink, Gate, GateSink};
///
/// let mut sink = CountingSink::new();
/// sink.push_gate(Gate::toffoli(0, 1, 2));
/// sink.push_gate(Gate::x(3));
/// assert_eq!(sink.histogram().t_complexity(), 7);
/// assert_eq!(sink.max_qubit(), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CountingSink {
    hist: GateHistogram,
    gate_count: u64,
    max_qubit: Option<Qubit>,
}

impl CountingSink {
    /// A fresh, empty counting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated histogram.
    pub fn histogram(&self) -> &GateHistogram {
        &self.hist
    }

    /// Consume the sink, returning the histogram.
    pub fn into_histogram(self) -> GateHistogram {
        self.hist
    }

    /// Total number of gates seen.
    pub fn gate_count(&self) -> u64 {
        self.gate_count
    }

    /// The largest qubit index seen, if any gate was pushed.
    pub fn max_qubit(&self) -> Option<Qubit> {
        self.max_qubit
    }
}

impl GateSink for CountingSink {
    fn push_gate(&mut self, gate: Gate) {
        self.push_view(gate.as_view());
    }

    fn push_view(&mut self, view: GateView<'_>) {
        self.gate_count += 1;
        self.max_qubit = Some(match self.max_qubit {
            Some(m) => m.max(view.max_qubit()),
            None => view.max_qubit(),
        });
        self.hist.record_view(&view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn counting_sink_matches_materialized_histogram() {
        let gates = vec![
            Gate::x(0),
            Gate::cnot(1, 2),
            Gate::mcx(vec![0, 1, 2], 3),
            Gate::h(4),
        ];
        let mut sink = CountingSink::new();
        let mut circuit = Circuit::new(0);
        for g in &gates {
            sink.push_gate(g.clone());
            circuit.push(g.clone());
        }
        assert_eq!(sink.histogram(), &circuit.histogram());
        assert_eq!(sink.gate_count(), 4);
        assert_eq!(sink.max_qubit(), Some(4));
    }

    #[test]
    fn vec_sink_collects_gates() {
        let mut v: Vec<Gate> = Vec::new();
        v.push_gate(Gate::x(0));
        assert_eq!(v, vec![Gate::x(0)]);
    }
}
