//! Reader and writer for the `.qc` quantum circuit format (Mosca 2016),
//! the output format of the Tower compiler and the input format of the
//! Feynman circuit optimizer.
//!
//! The format names qubits in a `.v` header, lists inputs/outputs, and
//! wraps the gate list in `BEGIN`/`END`. Multiply-controlled NOT gates are
//! written as `tof c1 … ck t`; this writer additionally emits
//! multiply-controlled Hadamards as a `ch c1 … ck t` extension line (the
//! standard format has no controlled-Hadamard).
//!
//! # Example
//!
//! ```
//! use qcirc::{Circuit, Gate, qcformat};
//!
//! let mut circuit = Circuit::new(3);
//! circuit.push(Gate::toffoli(0, 1, 2));
//! let text = qcformat::write(&circuit);
//! let back = qcformat::parse(&text).unwrap();
//! assert_eq!(back, circuit);
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateKind};

/// Render a circuit in `.qc` format.
pub fn write(circuit: &Circuit) -> String {
    let mut out = String::new();
    let names: Vec<String> = (0..circuit.num_qubits()).map(|i| format!("q{i}")).collect();
    for header in [".v", ".i", ".o"] {
        out.push_str(header);
        for name in &names {
            let _ = write!(out, " {name}");
        }
        out.push('\n');
    }
    out.push_str("\nBEGIN\n");
    for view in circuit {
        // Write straight into the output buffer: no per-gate line string.
        match view.kind {
            GateKind::Mcx => {
                out.push_str("tof");
                for c in view.controls {
                    let _ = write!(out, " q{c}");
                }
                let _ = write!(out, " q{}", view.target);
            }
            GateKind::Mch if view.controls.is_empty() => {
                let _ = write!(out, "H q{}", view.target);
            }
            GateKind::Mch => {
                out.push_str("ch");
                for c in view.controls {
                    let _ = write!(out, " q{c}");
                }
                let _ = write!(out, " q{}", view.target);
            }
            GateKind::T => {
                let _ = write!(out, "T q{}", view.target);
            }
            GateKind::Tdg => {
                let _ = write!(out, "T* q{}", view.target);
            }
            GateKind::S => {
                let _ = write!(out, "S q{}", view.target);
            }
            GateKind::Sdg => {
                let _ = write!(out, "S* q{}", view.target);
            }
            GateKind::Z => {
                let _ = write!(out, "Z q{}", view.target);
            }
        }
        out.push('\n');
    }
    out.push_str("END\n");
    out
}

/// Parse a `.qc` file into a [`Circuit`].
///
/// # Errors
///
/// Returns [`QcircError::Parse`] with a line number on malformed input:
/// unknown gate mnemonics, references to undeclared qubits, or gates with
/// too few operands.
pub fn parse(text: &str) -> Result<Circuit, QcircError> {
    let mut names: HashMap<String, u32> = HashMap::new();
    let mut circuit = Circuit::new(0);
    let mut in_body = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".v") {
            for (i, name) in rest.split_whitespace().enumerate() {
                names.insert(name.to_string(), i as u32);
            }
            circuit.ensure_qubits(names.len() as u32);
            continue;
        }
        if line.starts_with('.') {
            continue; // .i/.o/.c headers carry no circuit content we need
        }
        match line {
            "BEGIN" => {
                in_body = true;
                continue;
            }
            "END" => {
                in_body = false;
                continue;
            }
            _ => {}
        }
        if !in_body {
            continue;
        }

        let mut parts = line.split_whitespace();
        let mnemonic = parts.next().expect("nonempty line has a token");
        let operands: Vec<u32> = parts
            .map(|tok| {
                names.get(tok).copied().ok_or_else(|| QcircError::Parse {
                    line: lineno,
                    message: format!("unknown qubit `{tok}`"),
                })
            })
            .collect::<Result<_, _>>()?;

        let too_few = |need: usize| QcircError::Parse {
            line: lineno,
            message: format!("`{mnemonic}` needs at least {need} operand(s)"),
        };
        // A gate whose target is also a control (`tof a a`) is not a
        // permutation; reject it here rather than hand downstream passes
        // an ill-formed gate (the constructors only debug-assert this).
        let distinct = |controls: &[u32], target: u32| -> Result<(), QcircError> {
            if controls.contains(&target) {
                Err(QcircError::Parse {
                    line: lineno,
                    message: format!("`{mnemonic}` target is also a control"),
                })
            } else {
                Ok(())
            }
        };
        let gate = match mnemonic {
            "tof" | "Tof" | "TOF" | "cnot" | "not" => {
                let (&target, controls) = operands.split_last().ok_or_else(|| too_few(1))?;
                distinct(controls, target)?;
                Gate::mcx(controls.to_vec(), target)
            }
            "X" | "x" => Gate::x(*operands.first().ok_or_else(|| too_few(1))?),
            "H" | "h" => Gate::h(*operands.first().ok_or_else(|| too_few(1))?),
            "ch" | "CH" => {
                let (&target, controls) = operands.split_last().ok_or_else(|| too_few(2))?;
                if controls.is_empty() {
                    return Err(too_few(2));
                }
                distinct(controls, target)?;
                Gate::mch(controls.to_vec(), target)
            }
            "T" | "t" => Gate::T(*operands.first().ok_or_else(|| too_few(1))?),
            "T*" | "t*" | "Tdg" => Gate::Tdg(*operands.first().ok_or_else(|| too_few(1))?),
            "S" | "s" => Gate::S(*operands.first().ok_or_else(|| too_few(1))?),
            "S*" | "s*" | "Sdg" => Gate::Sdg(*operands.first().ok_or_else(|| too_few(1))?),
            "Z" | "z" => Gate::Z(*operands.first().ok_or_else(|| too_few(1))?),
            other => {
                return Err(QcircError::Parse {
                    line: lineno,
                    message: format!("unknown gate `{other}`"),
                })
            }
        };
        circuit.push(gate);
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::x(0));
        c.push(Gate::cnot(0, 1));
        c.push(Gate::toffoli(0, 1, 2));
        c.push(Gate::mcx(vec![0, 1, 2], 3));
        c.push(Gate::h(1));
        c.push(Gate::ch(0, 1));
        c.push(Gate::T(2));
        c.push(Gate::Tdg(2));
        c.push(Gate::S(3));
        c.push(Gate::Sdg(3));
        c.push(Gate::Z(0));
        c
    }

    #[test]
    fn roundtrip_preserves_gates_and_width() {
        let circuit = sample_circuit();
        let parsed = parse(&write(&circuit)).unwrap();
        assert_eq!(parsed, circuit);
        assert_eq!(parsed.num_qubits(), circuit.num_qubits());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\
.v a b c
.i a b c
# a comment
BEGIN
tof a b c  # trailing comment
X a
END
";
        let circuit = parse(text).unwrap();
        assert_eq!(circuit.to_gates(), vec![Gate::toffoli(0, 1, 2), Gate::x(0)]);
    }

    #[test]
    fn unknown_qubit_is_an_error() {
        let text = ".v a\nBEGIN\nX b\nEND\n";
        let err = parse(text).unwrap_err();
        assert!(matches!(err, QcircError::Parse { line: 3, .. }));
    }

    #[test]
    fn self_controlled_gate_is_an_error() {
        for body in ["tof a a", "tof a b a", "ch a a"] {
            let text = format!(".v a b\nBEGIN\n{body}\nEND\n");
            assert!(
                matches!(parse(&text), Err(QcircError::Parse { line: 3, .. })),
                "`{body}` should be rejected"
            );
        }
    }

    #[test]
    fn unknown_gate_is_an_error() {
        let text = ".v a\nBEGIN\nRY a\nEND\n";
        assert!(matches!(parse(text), Err(QcircError::Parse { .. })));
    }

    #[test]
    fn empty_file_parses_to_empty_circuit() {
        let circuit = parse("").unwrap();
        assert!(circuit.is_empty());
    }
}
