//! A minimal complex-number type for the state-vector simulator.
//!
//! The workspace deliberately avoids external numeric dependencies; this is
//! the small subset of complex arithmetic the simulator needs.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use qcirc::sim::Complex;
///
/// let i = Complex::new(0.0, 1.0);
/// assert!((i * i - Complex::new(-1.0, 0.0)).norm_sqr() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiply by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Approximate equality within `eps` in both components.
    pub fn approx_eq(self, other: Complex, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polar_unit_has_unit_norm() {
        for k in 0..8 {
            let z = Complex::from_polar_unit(std::f64::consts::FRAC_PI_4 * k as f64);
            assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(1.5, -2.0);
        let b = Complex::new(-0.5, 3.0);
        assert!((a + b - b).approx_eq(a, 1e-12));
        assert!((a * Complex::ONE).approx_eq(a, 1e-12));
        assert!((a * b).approx_eq(b * a, 1e-12));
        assert!((-a + a).approx_eq(Complex::ZERO, 1e-12));
    }

    #[test]
    fn conjugate_squares_norm() {
        let a = Complex::new(3.0, 4.0);
        assert!((a * a.conj()).approx_eq(Complex::new(25.0, 0.0), 1e-12));
    }
}
