//! Dense state-vector simulation of Clifford+T+H circuits.

use std::f64::consts::FRAC_PI_4;

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateKind, GateView, Qubit};
use crate::sim::complex::Complex;

/// Largest register the state-vector simulator will allocate (2²⁶ complex
/// amplitudes ≈ 1 GiB); tests stay far below this.
const MAX_QUBITS: u32 = 26;

/// A dense quantum state vector over `n` qubits.
///
/// Supports every gate in this crate exactly (phases included), which makes
/// it the ground truth for verifying the Clifford+T decompositions and for
/// equivalence-checking circuits that contain Hadamard statements.
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
/// use qcirc::sim::StateVec;
///
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::h(0));
/// circuit.push(Gate::cnot(0, 1));
///
/// let mut state = StateVec::basis(2, 0).unwrap();
/// state.run(&circuit).unwrap();
/// // Bell state: |00⟩ and |11⟩ each with probability 1/2.
/// assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StateVec {
    amps: Vec<Complex>,
    num_qubits: u32,
}

impl StateVec {
    /// The basis state `|index⟩` of an `n`-qubit register.
    ///
    /// # Errors
    ///
    /// [`QcircError::TooManyQubits`] if `n` exceeds the supported maximum.
    pub fn basis(num_qubits: u32, index: u64) -> Result<Self, QcircError> {
        if num_qubits > MAX_QUBITS {
            return Err(QcircError::TooManyQubits {
                requested: num_qubits,
                max: MAX_QUBITS,
            });
        }
        let mut amps = vec![Complex::ZERO; 1usize << num_qubits];
        amps[index as usize] = Complex::ONE;
        Ok(StateVec { amps, num_qubits })
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    pub fn amplitude(&self, index: u64) -> Complex {
        self.amps[index as usize]
    }

    /// The probability of measuring basis state `index`.
    pub fn probability(&self, index: u64) -> f64 {
        self.amps[index as usize].norm_sqr()
    }

    /// Apply one gate.
    ///
    /// # Errors
    ///
    /// [`QcircError::QubitOutOfRange`] if the gate references a qubit beyond
    /// the register.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), QcircError> {
        self.apply_view(gate.as_view())
    }

    /// Apply one gate by view (no gate materialized).
    ///
    /// # Errors
    ///
    /// As [`StateVec::apply`].
    pub fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        if view.max_qubit() >= self.num_qubits {
            return Err(QcircError::QubitOutOfRange {
                qubit: view.max_qubit(),
                num_qubits: self.num_qubits,
            });
        }
        match view.kind {
            GateKind::Mcx => self.apply_mcx(view.controls, view.target),
            GateKind::Mch => self.apply_mch(view.controls, view.target),
            GateKind::T => self.apply_phase(view.target, Complex::from_polar_unit(FRAC_PI_4)),
            GateKind::Tdg => self.apply_phase(view.target, Complex::from_polar_unit(-FRAC_PI_4)),
            GateKind::S => self.apply_phase(view.target, Complex::new(0.0, 1.0)),
            GateKind::Sdg => self.apply_phase(view.target, Complex::new(0.0, -1.0)),
            GateKind::Z => self.apply_phase(view.target, Complex::new(-1.0, 0.0)),
        }
        Ok(())
    }

    /// Run a whole circuit.
    ///
    /// # Errors
    ///
    /// Stops at the first failing gate (see [`StateVec::apply`]).
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        for view in circuit {
            self.apply_view(view)?;
        }
        Ok(())
    }

    fn controls_mask(controls: &[Qubit]) -> u64 {
        controls.iter().fold(0u64, |m, &c| m | (1u64 << c))
    }

    fn apply_mcx(&mut self, controls: &[Qubit], target: Qubit) {
        let cmask = Self::controls_mask(controls);
        let tbit = 1u64 << target;
        for i in 0..self.amps.len() as u64 {
            // Visit each (i, i^tbit) pair once, from the target=0 side.
            if i & tbit == 0 && (i & cmask) == cmask {
                self.amps.swap(i as usize, (i | tbit) as usize);
            }
        }
    }

    fn apply_mch(&mut self, controls: &[Qubit], target: Qubit) {
        let cmask = Self::controls_mask(controls);
        let tbit = 1u64 << target;
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        for i in 0..self.amps.len() as u64 {
            if i & tbit == 0 && (i & cmask) == cmask {
                let a0 = self.amps[i as usize];
                let a1 = self.amps[(i | tbit) as usize];
                self.amps[i as usize] = (a0 + a1).scale(inv_sqrt2);
                self.amps[(i | tbit) as usize] = (a0 - a1).scale(inv_sqrt2);
            }
        }
    }

    fn apply_phase(&mut self, qubit: Qubit, phase: Complex) {
        let qbit = 1u64 << qubit;
        for i in 0..self.amps.len() as u64 {
            if i & qbit != 0 {
                let a = self.amps[i as usize];
                self.amps[i as usize] = a * phase;
            }
        }
    }

    /// Approximate equality of two states up to a global phase.
    ///
    /// Circuits that are equal as *operations* can differ by a global phase
    /// as *state preparations* — a T gate on a qubit in state |1⟩ is the
    /// textbook example — and no measurement distinguishes the two, so this
    /// is the right notion of equality for equivalence checking. Use
    /// [`StateVec::approx_eq_exact`] when the phase itself is under test
    /// (e.g. verifying a decomposition is exactly unitary-equal).
    pub fn approx_eq(&self, other: &StateVec, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Reference phase from this state's largest amplitude.
        let Some((imax, amax)) = self
            .amps
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
        else {
            return true; // zero qubits: both states are the empty product
        };
        if amax.norm_sqr() <= eps * eps {
            // This state is (numerically) zero everywhere; equal iff the
            // other is too.
            return other.amps.iter().all(|b| b.norm_sqr() <= eps * eps);
        }
        let bmax = other.amps[imax];
        if bmax.norm_sqr() <= eps * eps {
            return false;
        }
        let phase = crate::sim::sparse::relative_phase(*amax, bmax);
        self.amps
            .iter()
            .zip(&other.amps)
            .all(|(a, b)| (*a * phase).approx_eq(*b, eps))
    }

    /// Exact (phase-sensitive) approximate equality of two states.
    pub fn approx_eq_exact(&self, other: &StateVec, eps: f64) -> bool {
        self.num_qubits == other.num_qubits
            && self
                .amps
                .iter()
                .zip(&other.amps)
                .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// `|⟨self|other⟩|²` — fidelity between two pure states.
    pub fn fidelity(&self, other: &StateVec) -> f64 {
        let inner = self
            .amps
            .iter()
            .zip(&other.amps)
            .fold(Complex::ZERO, |acc, (a, b)| acc + a.conj() * *b);
        inner.norm_sqr()
    }

    /// Total probability mass (should be 1 for a valid state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Indices of the amplitudes that are numerically nonzero.
    fn support_indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.amps
            .iter()
            .enumerate()
            .filter(|(_, a)| a.norm_sqr() > 1e-24)
            .map(|(i, _)| i as u64)
    }
}

impl crate::sim::Simulator for StateVec {
    fn zeroed(num_qubits: u32) -> Result<Self, QcircError> {
        StateVec::basis(num_qubits, 0)
    }

    fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        StateVec::apply_view(self, view)
    }

    fn read_range(&self, offset: Qubit, width: u32) -> Option<u64> {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        let extract = |i: u64| {
            if width == 0 {
                0
            } else {
                (i >> offset) & (u64::MAX >> (64 - width))
            }
        };
        let mut values = self.support_indices().map(extract);
        let first = values.next()?;
        values.all(|v| v == first).then_some(first)
    }

    fn write_range(&mut self, offset: Qubit, width: u32, value: u64) {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        let mask = if width == 0 {
            0
        } else {
            (u64::MAX >> (64 - width)) << offset
        };
        let bits = (value << offset) & mask;
        let mut next = vec![Complex::ZERO; self.amps.len()];
        for i in self.support_indices() {
            next[((i & !mask) | bits) as usize] += self.amps[i as usize];
        }
        self.amps = next;
    }

    fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool {
        let mut mask = 0u64;
        for &(off, width) in keep {
            for q in off..off + width {
                if q < self.num_qubits {
                    mask |= 1u64 << q;
                }
            }
        }
        self.support_indices().all(|i| i & !mask == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_permutes_basis() {
        let mut s = StateVec::basis(2, 0b00).unwrap();
        s.apply(&Gate::x(1)).unwrap();
        assert!((s.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut s = StateVec::basis(1, 1).unwrap();
        s.apply(&Gate::h(0)).unwrap();
        s.apply(&Gate::h(0)).unwrap();
        let reference = StateVec::basis(1, 1).unwrap();
        assert!(s.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn t_to_the_eighth_is_identity() {
        let mut s = StateVec::basis(1, 1).unwrap();
        s.apply(&Gate::h(0)).unwrap();
        for _ in 0..8 {
            s.apply(&Gate::T(0)).unwrap();
        }
        s.apply(&Gate::h(0)).unwrap();
        let reference = StateVec::basis(1, 1).unwrap();
        assert!(s.approx_eq(&reference, 1e-12));
    }

    #[test]
    fn t_tdg_cancels() {
        let mut s = StateVec::basis(1, 1).unwrap();
        s.apply(&Gate::T(0)).unwrap();
        s.apply(&Gate::Tdg(0)).unwrap();
        assert!(s.approx_eq(&StateVec::basis(1, 1).unwrap(), 1e-12));
    }

    #[test]
    fn s_equals_t_squared() {
        let mut a = StateVec::basis(1, 1).unwrap();
        a.apply(&Gate::T(0)).unwrap();
        a.apply(&Gate::T(0)).unwrap();
        let mut b = StateVec::basis(1, 1).unwrap();
        b.apply(&Gate::S(0)).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn z_equals_s_squared() {
        let mut a = StateVec::basis(1, 1).unwrap();
        a.apply(&Gate::S(0)).unwrap();
        a.apply(&Gate::S(0)).unwrap();
        let mut b = StateVec::basis(1, 1).unwrap();
        b.apply(&Gate::Z(0)).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn controlled_h_only_fires_when_control_set() {
        let mut s = StateVec::basis(2, 0b01).unwrap(); // control q1 = 0
        s.apply(&Gate::ch(1, 0)).unwrap();
        assert!(s.approx_eq(&StateVec::basis(2, 0b01).unwrap(), 1e-12));

        let mut s = StateVec::basis(2, 0b10).unwrap(); // control q1 = 1
        s.apply(&Gate::ch(1, 0)).unwrap();
        assert!((s.probability(0b10) - 0.5).abs() < 1e-12);
        assert!((s.probability(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn norm_is_preserved() {
        let mut s = StateVec::basis(3, 5).unwrap();
        for g in [
            Gate::h(0),
            Gate::T(1),
            Gate::toffoli(0, 1, 2),
            Gate::ch(2, 0),
            Gate::Sdg(2),
        ] {
            s.apply(&g).unwrap();
        }
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn too_many_qubits_is_error() {
        assert!(matches!(
            StateVec::basis(60, 0),
            Err(QcircError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn approx_eq_ignores_t_gate_global_phase() {
        // T|1⟩ = e^{iπ/4}|1⟩: physically the same state as |1⟩. This used
        // to be reported unequal (regression test for the exact-comparison
        // bug).
        let mut a = StateVec::basis(1, 1).unwrap();
        a.apply(&Gate::T(0)).unwrap();
        let b = StateVec::basis(1, 1).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
        assert!(b.approx_eq(&a, 1e-12));
        assert!(
            !a.approx_eq_exact(&b, 1e-12),
            "exact comparison still sees the phase"
        );
    }

    #[test]
    fn approx_eq_ignores_anticommutation_global_phase() {
        // ZX = -XZ: the two orders prepare states differing by a -1 global
        // phase.
        let mut a = StateVec::basis(1, 0).unwrap();
        a.apply(&Gate::x(0)).unwrap();
        a.apply(&Gate::Z(0)).unwrap();
        let mut b = StateVec::basis(1, 0).unwrap();
        b.apply(&Gate::Z(0)).unwrap();
        b.apply(&Gate::x(0)).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
        assert!(!a.approx_eq_exact(&b, 1e-12));
    }

    #[test]
    fn approx_eq_still_sees_relative_phase() {
        // (|0⟩+|1⟩)/√2 vs (|0⟩−|1⟩)/√2: a relative phase, not a global one.
        let mut plus = StateVec::basis(1, 0).unwrap();
        plus.apply(&Gate::h(0)).unwrap();
        let mut minus = plus.clone();
        minus.apply(&Gate::Z(0)).unwrap();
        assert!(!plus.approx_eq(&minus, 1e-12));
    }

    #[test]
    fn approx_eq_rejects_different_states_and_sizes() {
        let a = StateVec::basis(2, 0).unwrap();
        let b = StateVec::basis(2, 3).unwrap();
        assert!(!a.approx_eq(&b, 1e-12));
        let c = StateVec::basis(3, 0).unwrap();
        assert!(!a.approx_eq(&c, 1e-12));
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVec::basis(2, 0).unwrap();
        let b = StateVec::basis(2, 3).unwrap();
        assert!(a.fidelity(&b) < 1e-12);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }
}
