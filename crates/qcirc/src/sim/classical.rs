//! Classical reversible simulation of MCX-level circuits.

use std::fmt;

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateKind, GateView, Qubit};

/// A classical basis state of an `n`-qubit register, stored as a bit vector.
///
/// MCX gates act on basis states as reversible boolean functions; this
/// simulator applies them directly. Gates that create superposition
/// (Hadamard) or phases (T/S/Z) are rejected with
/// [`QcircError::NotClassical`].
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
/// use qcirc::sim::BasisState;
///
/// let mut circuit = Circuit::new(3);
/// circuit.push(Gate::x(0));
/// circuit.push(Gate::toffoli(0, 1, 2));
///
/// let mut state = BasisState::new(3);
/// state.set_bit(1, true);
/// state.run(&circuit).unwrap();
/// assert!(state.bit(2)); // both controls were 1
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BasisState {
    words: Vec<u64>,
    num_qubits: u32,
}

impl BasisState {
    /// The all-zero state of `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        let words = vec![0u64; num_qubits.div_ceil(64) as usize];
        BasisState { words, num_qubits }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// The value of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn bit(&self, q: Qubit) -> bool {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        (self.words[(q / 64) as usize] >> (q % 64)) & 1 == 1
    }

    /// Set qubit `q` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set_bit(&mut self, q: Qubit, value: bool) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        let word = &mut self.words[(q / 64) as usize];
        if value {
            *word |= 1 << (q % 64);
        } else {
            *word &= !(1 << (q % 64));
        }
    }

    /// Flip qubit `q`.
    pub fn flip(&mut self, q: Qubit) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
        self.words[(q / 64) as usize] ^= 1 << (q % 64);
    }

    /// Read `width ≤ 64` consecutive qubits starting at `offset` as a
    /// little-endian unsigned integer (qubit `offset` is bit 0).
    pub fn read_range(&self, offset: Qubit, width: u32) -> u64 {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        let mut value = 0u64;
        for i in 0..width {
            if self.bit(offset + i) {
                value |= 1 << i;
            }
        }
        value
    }

    /// Write `width ≤ 64` consecutive qubits starting at `offset` from the
    /// low bits of `value`.
    pub fn write_range(&mut self, offset: Qubit, width: u32, value: u64) {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        for i in 0..width {
            self.set_bit(offset + i, (value >> i) & 1 == 1);
        }
    }

    /// Apply a single MCX-level gate.
    ///
    /// # Errors
    ///
    /// [`QcircError::NotClassical`] for Hadamard or phase gates;
    /// [`QcircError::QubitOutOfRange`] for out-of-range qubits.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), QcircError> {
        self.apply_view(gate.as_view())
    }

    /// Apply a single MCX-level gate by view (no gate materialized).
    ///
    /// # Errors
    ///
    /// As [`BasisState::apply`].
    pub fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        match view.kind {
            GateKind::Mcx => {
                for q in view.qubits() {
                    if q >= self.num_qubits {
                        return Err(QcircError::QubitOutOfRange {
                            qubit: q,
                            num_qubits: self.num_qubits,
                        });
                    }
                }
                if view.controls.iter().all(|&c| self.bit(c)) {
                    self.flip(view.target);
                }
                Ok(())
            }
            _ => Err(QcircError::NotClassical {
                gate: view.to_string(),
            }),
        }
    }

    /// Run a whole circuit.
    ///
    /// # Errors
    ///
    /// Stops at the first gate that fails to apply (see [`BasisState::apply`]).
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        for view in circuit {
            self.apply_view(view)?;
        }
        Ok(())
    }

    /// Whether every qubit outside the given ranges is zero.
    ///
    /// Used to check Definition 6.2's requirement that non-live registers
    /// map to zero.
    pub fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool {
        (0..self.num_qubits)
            .all(|q| keep.iter().any(|&(off, width)| q >= off && q < off + width) || !self.bit(q))
    }
}

impl crate::sim::Simulator for BasisState {
    fn zeroed(num_qubits: u32) -> Result<Self, QcircError> {
        Ok(BasisState::new(num_qubits))
    }

    fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        BasisState::apply_view(self, view)
    }

    fn read_range(&self, offset: Qubit, width: u32) -> Option<u64> {
        Some(BasisState::read_range(self, offset, width))
    }

    fn write_range(&mut self, offset: Qubit, width: u32, value: u64) {
        BasisState::write_range(self, offset, width, value);
    }

    fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool {
        BasisState::zero_outside(self, keep)
    }
}

impl fmt::Display for BasisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for q in (0..self.num_qubits).rev() {
            write!(f, "{}", u8::from(self.bit(q)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_flips_target() {
        let mut s = BasisState::new(2);
        s.apply(&Gate::x(1)).unwrap();
        assert!(!s.bit(0));
        assert!(s.bit(1));
    }

    #[test]
    fn mcx_requires_all_controls() {
        let mut s = BasisState::new(4);
        s.set_bit(0, true);
        s.apply(&Gate::mcx(vec![0, 1, 2], 3)).unwrap();
        assert!(!s.bit(3));
        s.set_bit(1, true);
        s.set_bit(2, true);
        s.apply(&Gate::mcx(vec![0, 1, 2], 3)).unwrap();
        assert!(s.bit(3));
    }

    #[test]
    fn hadamard_is_not_classical() {
        let mut s = BasisState::new(1);
        assert!(matches!(
            s.apply(&Gate::h(0)),
            Err(QcircError::NotClassical { .. })
        ));
    }

    #[test]
    fn range_roundtrip() {
        let mut s = BasisState::new(70);
        s.write_range(3, 8, 0xA5);
        assert_eq!(s.read_range(3, 8), 0xA5);
        assert_eq!(s.read_range(0, 3), 0);
        s.write_range(60, 10, 0x3FF);
        assert_eq!(s.read_range(60, 10), 0x3FF);
    }

    #[test]
    fn zero_outside_checks_ranges() {
        let mut s = BasisState::new(8);
        s.write_range(2, 3, 0b111);
        assert!(s.zero_outside(&[(2, 3)]));
        assert!(!s.zero_outside(&[(2, 2)]));
    }

    #[test]
    fn out_of_range_is_error() {
        let mut s = BasisState::new(2);
        assert!(matches!(
            s.apply(&Gate::x(5)),
            Err(QcircError::QubitOutOfRange { qubit: 5, .. })
        ));
    }

    #[test]
    fn display_is_msb_first() {
        let mut s = BasisState::new(4);
        s.set_bit(0, true);
        assert_eq!(s.to_string(), "0001");
    }
}
