//! Sparse amplitude-map simulation of Clifford+T+H circuits.
//!
//! Tower programs compile to highly structured circuits: Hadamard-free
//! programs permute basis states, and the Hadamard statements the language
//! does admit each at most double the number of nonzero amplitudes. A
//! register of 30+ qubits therefore typically carries only a handful of
//! nonzero amplitudes — far too few to justify the dense simulator's
//! 2ⁿ-element vector. [`SparseState`] stores only the nonzero amplitudes
//! in a hash map keyed by basis index, so simulation cost scales with the
//! *support* of the state rather than with the register width.
//!
//! The key type is generic: the default `u64` key caps the register at 64
//! qubits with the historical layout and performance, while the
//! [`WideKey`](crate::sim::WideKey)-backed aliases [`SparseState128`] and
//! [`SparseState256`] reach 128 and 256 qubits. Whole-circuit runs go
//! through the batched execution engine in [`crate::sim::exec`], which
//! fuses Hadamard-free gate runs into single map passes and shards large
//! states across threads.

use std::collections::HashMap;
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateKind, GateView, Qubit};
use crate::sim::complex::Complex;
use crate::sim::exec::{self, ExecConfig};
use crate::sim::key::{BasisKey, Key128, Key256};
use crate::sim::Simulator;

/// Default pruning threshold on amplitude magnitude. Hadamard pairs that
/// cancel leave residues around 1e-16; anything below this is numerical
/// noise, not state.
const DEFAULT_EPSILON: f64 = 1e-12;

/// A sparse quantum state: a map from basis index to nonzero amplitude.
///
/// The key type `K` bounds the register width: the default `u64` reaches
/// 64 qubits (the exact historical layout), [`SparseState128`] /
/// [`SparseState256`] reach 128 / 256 via `[u64; W]` keys.
///
/// Supports the full gate set of this crate exactly (phases included).
/// Single-gate application is one pass over the amplitude map; whole
/// circuits run through the batched engine, which fuses Hadamard-free
/// (monomial) gate runs into a single pass and can shard large states
/// across threads (see [`ExecConfig`]). Amplitudes whose magnitude falls
/// below a configurable epsilon are pruned after interfering operations,
/// so states with small support stay small even through Hadamard
/// cancellations.
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
/// use qcirc::sim::SparseState;
///
/// // A 40-qubit GHZ state: far beyond any dense simulator, two amplitudes.
/// let mut circuit = Circuit::new(40);
/// circuit.push(Gate::h(0));
/// for q in 1..40 {
///     circuit.push(Gate::cnot(q - 1, q));
/// }
/// let mut state = SparseState::basis(40, 0).unwrap();
/// state.run(&circuit).unwrap();
/// assert_eq!(state.support(), 2);
/// assert!((state.probability(0) - 0.5).abs() < 1e-12);
/// assert!((state.probability((1u64 << 40) - 1) - 0.5).abs() < 1e-12);
/// ```
///
/// The same circuit shape at 200 qubits needs a wide key:
///
/// ```
/// use qcirc::{Circuit, Gate};
/// use qcirc::sim::{BasisKey, Key256, SparseState256};
///
/// let mut circuit = Circuit::new(200);
/// circuit.push(Gate::h(0));
/// for q in 1..200 {
///     circuit.push(Gate::cnot(q - 1, q));
/// }
/// let mut state = SparseState256::basis(200, 0).unwrap();
/// state.run(&circuit).unwrap();
/// assert_eq!(state.support(), 2);
/// let ones = Key256::range_mask(0, 200);
/// assert!((state.amplitude_key(ones).norm_sqr() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct KeyedSparseState<K: BasisKey> {
    pub(super) amps: HashMap<K, Complex>,
    pub(super) num_qubits: u32,
    pub(super) epsilon: f64,
    pub(super) exec: ExecConfig,
}

/// The default sparse state: `u64` keys, up to 64 qubits (the historical
/// layout). A type alias so that `SparseState::basis(..)` and friends
/// resolve the key type without annotations at every call site.
pub type SparseState = KeyedSparseState<u64>;

/// A sparse state over two-word keys: up to 128 qubits.
pub type SparseState128 = KeyedSparseState<Key128>;

/// A sparse state over four-word keys: up to 256 qubits.
pub type SparseState256 = KeyedSparseState<Key256>;

impl<K: BasisKey> KeyedSparseState<K> {
    /// The basis state `|index⟩` of an `n`-qubit register (the index names
    /// the low 64 qubits; see [`SparseState::basis_key`] for wider basis
    /// states).
    ///
    /// # Errors
    ///
    /// [`QcircError::TooManyQubits`] if `n` exceeds the key width
    /// ([`BasisKey::MAX_QUBITS`]; 64 for the default `u64` key).
    pub fn basis(num_qubits: u32, index: u64) -> Result<Self, QcircError> {
        Self::basis_key(num_qubits, K::from_index(index))
    }

    /// The basis state `|key⟩` of an `n`-qubit register.
    ///
    /// # Errors
    ///
    /// As [`SparseState::basis`].
    pub fn basis_key(num_qubits: u32, key: K) -> Result<Self, QcircError> {
        if num_qubits > K::MAX_QUBITS {
            return Err(QcircError::TooManyQubits {
                requested: num_qubits,
                max: K::MAX_QUBITS,
            });
        }
        let mut amps = HashMap::new();
        amps.insert(key, Complex::ONE);
        Ok(KeyedSparseState {
            amps,
            num_qubits,
            epsilon: DEFAULT_EPSILON,
            exec: ExecConfig::default(),
        })
    }

    /// The same state with a different pruning threshold: amplitudes with
    /// magnitude `<= epsilon` are dropped after interfering operations.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "pruning epsilon must be non-negative");
        self.epsilon = epsilon;
        self
    }

    /// The same state with different execution-engine tuning (worker
    /// count, parallelism threshold, fusion depth).
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// The pruning threshold.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The execution-engine tuning.
    pub fn exec(&self) -> ExecConfig {
        self.exec
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Number of stored (nonzero) amplitudes.
    pub fn support(&self) -> usize {
        self.amps.len()
    }

    /// The amplitude of basis state `index` (zero if not stored). The
    /// index names the low 64 qubits; see [`SparseState::amplitude_key`].
    pub fn amplitude(&self, index: u64) -> Complex {
        self.amplitude_key(K::from_index(index))
    }

    /// The amplitude of basis state `key` (zero if not stored).
    pub fn amplitude_key(&self, key: K) -> Complex {
        self.amps.get(&key).copied().unwrap_or(Complex::ZERO)
    }

    /// The probability of measuring basis state `index`.
    pub fn probability(&self, index: u64) -> f64 {
        self.amplitude(index).norm_sqr()
    }

    /// Iterate over the stored `(basis key, amplitude)` pairs in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (K, Complex)> + '_ {
        self.amps.iter().map(|(&k, &a)| (k, a))
    }

    /// Total probability mass (1 for a valid state, up to pruning loss).
    pub fn norm(&self) -> f64 {
        self.amps.values().map(|a| a.norm_sqr()).sum()
    }

    /// Apply one gate.
    ///
    /// # Errors
    ///
    /// [`QcircError::QubitOutOfRange`] if the gate references a qubit beyond
    /// the register.
    pub fn apply(&mut self, gate: &Gate) -> Result<(), QcircError> {
        self.apply_view(gate.as_view())
    }

    /// Apply one gate by view (no gate materialized).
    ///
    /// # Errors
    ///
    /// As [`SparseState::apply`].
    pub fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        if view.max_qubit() >= self.num_qubits {
            return Err(QcircError::QubitOutOfRange {
                qubit: view.max_qubit(),
                num_qubits: self.num_qubits,
            });
        }
        match view.kind {
            GateKind::Mcx => self.apply_mcx(view.controls, view.target),
            GateKind::Mch => self.apply_mch(view.controls, view.target),
            GateKind::T => self.apply_phase(view.target, Complex::from_polar_unit(FRAC_PI_4)),
            GateKind::Tdg => self.apply_phase(view.target, Complex::from_polar_unit(-FRAC_PI_4)),
            GateKind::S => self.apply_phase(view.target, Complex::new(0.0, 1.0)),
            GateKind::Sdg => self.apply_phase(view.target, Complex::new(0.0, -1.0)),
            GateKind::Z => self.apply_phase(view.target, Complex::new(-1.0, 0.0)),
        }
        Ok(())
    }

    /// Run a whole circuit through the batched execution engine
    /// (`sim::exec`): gates are grouped into fused batches and each batch
    /// is applied in one pass over the amplitude map, in parallel when the
    /// support crosses [`ExecConfig::parallel_threshold`].
    ///
    /// # Errors
    ///
    /// Stops at the first failing gate (see [`SparseState::apply`]); gates
    /// before it have been applied.
    pub fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        exec::run_batched(self, circuit)
    }

    fn controls_mask(controls: &[Qubit]) -> K {
        controls.iter().fold(K::zero(), |m, &c| m.or(K::single(c)))
    }

    /// MCX permutes basis states: re-key every entry whose controls are all
    /// set. One batched pass, no interference, no pruning needed.
    fn apply_mcx(&mut self, controls: &[Qubit], target: Qubit) {
        let cmask = Self::controls_mask(controls);
        let tbit = K::single(target);
        self.amps = self
            .amps
            .drain()
            .map(|(k, a)| {
                if k.contains(cmask) {
                    (k.xor(tbit), a)
                } else {
                    (k, a)
                }
            })
            .collect();
    }

    /// MCH splits each controlled entry into the two target branches; the
    /// branches of partner entries interfere, so amplitudes are accumulated
    /// and then pruned.
    fn apply_mch(&mut self, controls: &[Qubit], target: Qubit) {
        let cmask = Self::controls_mask(controls);
        let tbit = K::single(target);
        let mut next: HashMap<K, Complex> = HashMap::with_capacity(self.amps.len() * 2);
        for (k, a) in self.amps.drain() {
            if !k.contains(cmask) {
                *next.entry(k).or_insert(Complex::ZERO) += a;
                continue;
            }
            let half = a.scale(FRAC_1_SQRT_2);
            if k.and(tbit).is_zero() {
                *next.entry(k).or_insert(Complex::ZERO) += half;
                *next.entry(k.xor(tbit)).or_insert(Complex::ZERO) += half;
            } else {
                *next.entry(k.xor(tbit)).or_insert(Complex::ZERO) += half;
                *next.entry(k).or_insert(Complex::ZERO) += -half;
            }
        }
        let eps_sqr = self.epsilon * self.epsilon;
        next.retain(|_, a| a.norm_sqr() > eps_sqr);
        self.amps = next;
    }

    fn apply_phase(&mut self, qubit: Qubit, phase: Complex) {
        let qbit = K::single(qubit);
        for (k, a) in &mut self.amps {
            if !k.and(qbit).is_zero() {
                *a = *a * phase;
            }
        }
    }

    /// Approximate equality up to a global phase, like
    /// [`StateVec::approx_eq`](crate::sim::StateVec::approx_eq).
    pub fn approx_eq(&self, other: &KeyedSparseState<K>, eps: f64) -> bool {
        if self.num_qubits != other.num_qubits {
            return false;
        }
        // Pick the reference phase from this state's largest amplitude.
        let Some((&kmax, &amax)) = self
            .amps
            .iter()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
        else {
            return other.amps.values().all(|a| a.norm_sqr() <= eps * eps);
        };
        if amax.norm_sqr() <= eps * eps {
            // This state is (numerically) zero everywhere — e.g. sub-eps
            // residues kept alive by `with_epsilon(0.0)`; equal iff the
            // other is too. Also keeps `relative_phase` away from 0/0.
            return other.amps.values().all(|a| a.norm_sqr() <= eps * eps);
        }
        let bmax = other.amplitude_key(kmax);
        if bmax.norm_sqr() <= eps * eps {
            return false;
        }
        // phase = b/a normalized to unit modulus.
        let phase = relative_phase(amax, bmax);
        // Every key of either map must agree after rotating self by phase.
        self.amps
            .keys()
            .chain(other.amps.keys())
            .all(|&k| (self.amplitude_key(k) * phase).approx_eq(other.amplitude_key(k), eps))
    }

    /// Exact (phase-sensitive) approximate equality of two states, like
    /// [`StateVec::approx_eq_exact`](crate::sim::StateVec::approx_eq_exact).
    pub fn approx_eq_exact(&self, other: &KeyedSparseState<K>, eps: f64) -> bool {
        self.num_qubits == other.num_qubits
            && self
                .amps
                .keys()
                .chain(other.amps.keys())
                .all(|&k| self.amplitude_key(k).approx_eq(other.amplitude_key(k), eps))
    }

    /// `|⟨self|other⟩|²` — fidelity between two pure states.
    pub fn fidelity(&self, other: &KeyedSparseState<K>) -> f64 {
        // Sum over the smaller support.
        let (small, big) = if self.amps.len() <= other.amps.len() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .amps
            .iter()
            .fold(Complex::ZERO, |acc, (&k, &a)| {
                acc + a.conj() * big.amplitude_key(k)
            })
            .norm_sqr()
    }

    /// Whether every stored amplitude's basis index has zero bits outside
    /// the given `(offset, width)` ranges.
    pub fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool {
        let mut mask = K::zero();
        for &(off, width) in keep {
            let width = width.min(self.num_qubits.saturating_sub(off));
            let mut done = 0;
            // Range masks are built ≤ 64 bits at a time (the key op's unit).
            while done < width {
                let step = (width - done).min(64);
                mask = mask.or(K::range_mask(off + done, step));
                done += step;
            }
        }
        self.amps.keys().all(|&k| k.and(mask.not()).is_zero())
    }

    /// Read `width ≤ 64` consecutive qubits as a little-endian integer, if
    /// every stored amplitude agrees on their value (`None` when the range
    /// is in superposition).
    pub fn read_range(&self, offset: Qubit, width: u32) -> Option<u64> {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        let mut values = self.amps.keys().map(|k| k.extract(offset, width));
        let first = values.next()?;
        values.all(|v| v == first).then_some(first)
    }

    /// Overwrite `width` consecutive qubits with the low bits of `value` in
    /// every stored amplitude (classical initialization; only meaningful
    /// when the target qubits are unentangled with the rest). Branches
    /// whose re-keyed indices collide accumulate, matching
    /// [`StateVec`](crate::sim::StateVec)'s behaviour, and near-zero
    /// collision residues are pruned like any other interference.
    pub fn write_range(&mut self, offset: Qubit, width: u32, value: u64) {
        assert!(width <= 64, "range width {width} exceeds 64 bits");
        let mask = K::range_mask(offset, width);
        let bits = K::deposit(offset, width, value);
        let mut next: HashMap<K, Complex> = HashMap::with_capacity(self.amps.len());
        for (k, a) in self.amps.drain() {
            *next
                .entry(k.and(mask.not()).or(bits))
                .or_insert(Complex::ZERO) += a;
        }
        // Colliding branches interfere exactly like a Hadamard pair, so the
        // same pruning applies — without it, cancellation residues (~1e-16)
        // survive as phantom support.
        let eps_sqr = self.epsilon * self.epsilon;
        next.retain(|_, a| a.norm_sqr() > eps_sqr);
        self.amps = next;
    }
}

/// `(b / a)` scaled to unit modulus — the global phase rotating `a` onto
/// `b`'s ray.
pub(crate) fn relative_phase(a: Complex, b: Complex) -> Complex {
    let ratio = b * a.conj();
    let norm = ratio.norm_sqr().sqrt();
    ratio.scale(1.0 / norm)
}

impl<K: BasisKey> Simulator for KeyedSparseState<K> {
    fn zeroed(num_qubits: u32) -> Result<Self, QcircError> {
        KeyedSparseState::basis(num_qubits, 0)
    }

    fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError> {
        KeyedSparseState::apply_view(self, view)
    }

    fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        KeyedSparseState::run(self, circuit)
    }

    fn read_range(&self, offset: Qubit, width: u32) -> Option<u64> {
        KeyedSparseState::read_range(self, offset, width)
    }

    fn write_range(&mut self, offset: Qubit, width: u32, value: u64) {
        KeyedSparseState::write_range(self, offset, width, value);
    }

    fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool {
        KeyedSparseState::zero_outside(self, keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::StateVec;

    /// Dense/sparse cross-check on a random-ish structured circuit.
    fn cross_check(circuit: &Circuit, initial: u64) {
        let n = circuit.num_qubits();
        let mut dense = StateVec::basis(n, initial).unwrap();
        dense.run(circuit).unwrap();
        let mut sparse = SparseState::basis(n, initial).unwrap();
        sparse.run(circuit).unwrap();
        for index in 0..(1u64 << n) {
            assert!(
                dense
                    .amplitude(index)
                    .approx_eq(sparse.amplitude(index), 1e-10),
                "index {index}: dense {} vs sparse {}",
                dense.amplitude(index),
                sparse.amplitude(index)
            );
        }
    }

    #[test]
    fn matches_dense_on_clifford_t_circuit() {
        let mut c = Circuit::new(4);
        for g in [
            Gate::h(0),
            Gate::T(0),
            Gate::cnot(0, 1),
            Gate::toffoli(0, 1, 2),
            Gate::ch(2, 3),
            Gate::S(3),
            Gate::Tdg(1),
            Gate::Z(0),
            Gate::mcx(vec![0, 1], 3),
            Gate::Sdg(2),
            Gate::h(2),
        ] {
            c.push(g);
        }
        cross_check(&c, 0b0000);
        cross_check(&c, 0b1011);
    }

    #[test]
    fn hadamard_twice_restores_support_one() {
        let mut s = SparseState::basis(8, 5).unwrap();
        s.apply(&Gate::h(3)).unwrap();
        assert_eq!(s.support(), 2);
        s.apply(&Gate::h(3)).unwrap();
        // The cancelled branch is pruned, not left as a ~1e-17 residue.
        assert_eq!(s.support(), 1);
        assert!((s.probability(5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mcx_fires_only_when_controls_set() {
        let mut s = SparseState::basis(40, 0b011).unwrap();
        s.apply(&Gate::mcx(vec![0, 1], 39)).unwrap();
        assert!((s.probability(0b011 | (1u64 << 39)) - 1.0).abs() < 1e-12);
        s.apply(&Gate::mcx(vec![0, 2], 39)).unwrap();
        assert!(
            (s.probability(0b011 | (1u64 << 39)) - 1.0).abs() < 1e-12,
            "unset control must not fire"
        );
    }

    #[test]
    fn phase_gates_act_on_set_bit_only() {
        let mut s = SparseState::basis(2, 0).unwrap();
        s.apply(&Gate::h(0)).unwrap();
        for _ in 0..8 {
            s.apply(&Gate::T(0)).unwrap();
        }
        s.apply(&Gate::h(0)).unwrap();
        assert!(s.approx_eq(&SparseState::basis(2, 0).unwrap(), 1e-12));
    }

    #[test]
    fn approx_eq_ignores_global_phase() {
        let mut a = SparseState::basis(1, 1).unwrap();
        a.apply(&Gate::T(0)).unwrap(); // e^{iπ/4}|1⟩
        let b = SparseState::basis(1, 1).unwrap();
        assert!(a.approx_eq(&b, 1e-12));
        assert!(b.approx_eq(&a, 1e-12));
    }

    #[test]
    fn approx_eq_distinguishes_relative_phase() {
        // (|0⟩+|1⟩)/√2 vs (|0⟩−|1⟩)/√2 differ by a *relative* phase.
        let mut plus = SparseState::basis(1, 0).unwrap();
        plus.apply(&Gate::h(0)).unwrap();
        let mut minus = plus.clone();
        minus.apply(&Gate::Z(0)).unwrap();
        assert!(!plus.approx_eq(&minus, 1e-12));
    }

    #[test]
    fn ghz_at_60_qubits_has_support_two() {
        let mut c = Circuit::new(60);
        c.push(Gate::h(0));
        for q in 1..60 {
            c.push(Gate::cnot(q - 1, q));
        }
        let mut s = SparseState::basis(60, 0).unwrap();
        s.run(&c).unwrap();
        assert_eq!(s.support(), 2);
        assert!((s.norm() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn ghz_at_250_qubits_has_support_two() {
        // The same structure on a wide key: both branches live above and
        // below the 64-bit word boundary.
        let mut c = Circuit::new(250);
        c.push(Gate::h(0));
        for q in 1..250 {
            c.push(Gate::cnot(q - 1, q));
        }
        let mut s = SparseState256::basis(250, 0).unwrap();
        s.run(&c).unwrap();
        assert_eq!(s.support(), 2);
        assert!((s.norm() - 1.0).abs() < 1e-10);
        let ones = Key256::range_mask(0, 250);
        assert!((s.amplitude_key(ones).norm_sqr() - 0.5).abs() < 1e-12);
        assert_eq!(s.read_range(100, 7), None, "GHZ range is superposed");
    }

    #[test]
    fn read_range_detects_superposition() {
        let mut s = SparseState::basis(10, 0).unwrap();
        s.write_range(2, 4, 0b1010);
        assert_eq!(s.read_range(2, 4), Some(0b1010));
        assert_eq!(s.read_range(0, 2), Some(0));
        s.apply(&Gate::h(3)).unwrap();
        assert_eq!(s.read_range(2, 4), None, "superposed range has no value");
        assert_eq!(s.read_range(0, 2), Some(0), "other ranges still classical");
    }

    #[test]
    fn wide_ranges_roundtrip_across_word_boundaries() {
        let mut s = SparseState128::basis(128, 0).unwrap();
        s.write_range(60, 20, 0xabcde);
        assert_eq!(s.read_range(60, 20), Some(0xabcde));
        assert!(s.zero_outside(&[(60, 20)]));
        assert!(!s.zero_outside(&[(0, 60)]));
        s.write_range(60, 20, 0);
        assert!(s.zero_outside(&[(0, 0)]));
    }

    #[test]
    fn zero_outside_checks_live_ranges() {
        let mut s = SparseState::basis(50, 0).unwrap();
        s.write_range(40, 3, 0b111);
        assert!(s.zero_outside(&[(40, 3)]));
        assert!(!s.zero_outside(&[(40, 2)]));
    }

    #[test]
    fn too_many_qubits_is_error() {
        assert!(matches!(
            SparseState::basis(65, 0),
            Err(QcircError::TooManyQubits { .. })
        ));
        assert!(SparseState128::basis(65, 0).is_ok());
        assert!(matches!(
            SparseState128::basis(129, 0),
            Err(QcircError::TooManyQubits { .. })
        ));
        assert!(matches!(
            SparseState256::basis(257, 0),
            Err(QcircError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = SparseState::basis(30, 0).unwrap();
        let b = SparseState::basis(30, 1u64 << 29).unwrap();
        assert!(a.fidelity(&b) < 1e-12);
        assert!((a.fidelity(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epsilon_pruning_is_configurable() {
        // With epsilon = 0, the cancelled Hadamard branch survives as a
        // numerical residue (or exact zero); with the default it is pruned.
        let mut s = SparseState::basis(1, 0).unwrap().with_epsilon(0.0);
        s.apply(&Gate::h(0)).unwrap();
        s.apply(&Gate::Z(0)).unwrap();
        s.apply(&Gate::h(0)).unwrap();
        // |0⟩ → |1⟩ via HZH = X; the |0⟩ amplitude cancels to exactly 0.0
        // here, which `> 0*0` still drops — so support is 1 either way, but
        // the threshold itself must be respected for nonzero residues.
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
        assert!(s.epsilon() == 0.0);
    }

    /// Mirrors `epsilon_pruning_is_configurable` for `write_range`: the
    /// collision sum of a branch pair that cancels only up to float error
    /// must be pruned under the default epsilon, and kept with epsilon 0.
    #[test]
    fn write_range_prunes_cancellation_residues() {
        // H then T⁴: amplitudes (1/√2, (e^{iπ/4})⁴/√2) where the repeated
        // complex product lands near −1/√2 but off by a few ulps.
        // Collapsing the qubit sums the pair: a ~1e-16 residue, not state.
        let residue = || {
            let mut s = SparseState::basis(1, 0).unwrap().with_epsilon(0.0);
            s.apply(&Gate::h(0)).unwrap();
            for _ in 0..4 {
                s.apply(&Gate::T(0)).unwrap();
            }
            s
        };
        let mut kept = residue();
        kept.write_range(0, 1, 0);
        assert_eq!(kept.support(), 1, "epsilon 0 keeps the residue");
        assert!(kept.norm() < 1e-30, "the kept entry is numerical noise");

        let mut pruned = residue().with_epsilon(DEFAULT_EPSILON);
        pruned.write_range(0, 1, 0);
        assert_eq!(pruned.support(), 0, "default epsilon prunes the residue");
    }
}
