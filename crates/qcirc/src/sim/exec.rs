//! Batched execution engine for [`SparseState`]: monomial fusion, footprint
//! batching, and shard-by-hash parallelism.
//!
//! Per-gate sparse simulation rebuilds the whole amplitude map once per
//! gate, which dominates the cost on the small-support states Tower
//! programs actually reach. The engine instead groups a circuit's gates
//! into *batches* applied entry-wise in a single pass over the map:
//!
//! * Every gate is linear, so a run of gates can be applied to each stored
//!   amplitude independently and the results accumulated at the end — the
//!   sum of the evolved entries equals the evolved sum.
//! * Hadamard-free gates (MCX and the phase gates) are *monomial*: each
//!   basis key maps to exactly one key with a phase factor. A run of them
//!   fuses into one injective pass — one map rebuild per batch instead of
//!   per gate, and no rebuild at all when the batch is phase-only.
//! * An MCH doubles an entry's branches, so batches cap how many MCH gates
//!   they absorb ([`ExecConfig::max_branching`]) and only absorb an MCH
//!   whose qubits are disjoint from the batch so far — overlapping
//!   Hadamards (e.g. an H·H cancellation) flush the batch first, keeping
//!   epsilon pruning effective between them.
//!
//! Disjointness is decided by the circuit's precomputed [`Footprint`]
//! masks. Beyond 64 qubits the masks fold (`q % 64`), which keeps
//! mask-disjointness a sound proof of qubit-disjointness but makes mask
//! *collision* inconclusive: two gates on qubits 3 and 67 collide in the
//! fold while sharing nothing. The scheduler therefore treats a mask
//! collision as overlap only within exact range (≤ 64 qubits) and falls
//! back to comparing the actual operand lists otherwise.
//!
//! When the support crosses [`ExecConfig::parallel_threshold`], a batch is
//! applied by [`std::thread::scope`] workers: the entries are split across
//! workers, each worker emits its output branches into per-shard buckets
//! keyed by a deterministic hash of the destination key, and the shards
//! are then merged (and pruned) independently — all contributions to one
//! key land in one shard, so no locking is needed.
//!
//! [`Footprint`]: crate::circuit::Footprint

use std::collections::HashMap;
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};
use std::num::NonZeroUsize;
use std::sync::OnceLock;

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{GateKind, GateView, Qubit};
use crate::sim::complex::Complex;
use crate::sim::key::BasisKey;
use crate::sim::sparse::KeyedSparseState;

/// Tuning knobs for the batched execution engine.
///
/// The defaults engage threads only once the support is large enough to
/// amortize spawning them, and cap fusion so branch expansion between
/// prunes stays bounded (`2^max_branching` branches per entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker count for parallel batches (1 disables threading).
    pub threads: usize,
    /// Minimum support before a batch is applied across threads.
    pub parallel_threshold: usize,
    /// Maximum number of MCH (branching) gates fused into one batch.
    pub max_branching: u32,
}

impl Default for ExecConfig {
    fn default() -> Self {
        static THREADS: OnceLock<usize> = OnceLock::new();
        ExecConfig {
            threads: *THREADS.get_or_init(|| {
                std::thread::available_parallelism()
                    .map_or(1, NonZeroUsize::get)
                    .min(8)
            }),
            parallel_threshold: 8192,
            max_branching: 6,
        }
    }
}

/// One gate lowered to the key operations the entry-wise pass performs.
#[derive(Debug, Clone, Copy)]
enum Step<K> {
    /// MCX: flip `tbit` where `cmask` is fully set (injective re-key).
    Permute { cmask: K, tbit: K },
    /// MCH: split each branch where `cmask` is fully set.
    Branch { cmask: K, tbit: K },
    /// Diagonal phase gate: multiply where `qbit` is set.
    Phase { qbit: K, phase: Complex },
}

/// The two transcendental phase constants, computed once per run rather
/// than per T gate (`cos`/`sin` dominate step lowering otherwise). Values
/// are bit-identical to the per-gate path, which calls the same function.
struct PhaseTable {
    t: Complex,
    tdg: Complex,
}

impl PhaseTable {
    fn new() -> Self {
        PhaseTable {
            t: Complex::from_polar_unit(FRAC_PI_4),
            tdg: Complex::from_polar_unit(-FRAC_PI_4),
        }
    }
}

fn step_of<K: BasisKey>(view: GateView<'_>, phases: &PhaseTable) -> Step<K> {
    let cmask = view
        .controls
        .iter()
        .fold(K::zero(), |m, &c| m.or(K::single(c)));
    let tbit = K::single(view.target);
    match view.kind {
        GateKind::Mcx => Step::Permute { cmask, tbit },
        GateKind::Mch => Step::Branch { cmask, tbit },
        GateKind::T => Step::Phase {
            qbit: tbit,
            phase: phases.t,
        },
        GateKind::Tdg => Step::Phase {
            qbit: tbit,
            phase: phases.tdg,
        },
        GateKind::S => Step::Phase {
            qbit: tbit,
            phase: Complex::new(0.0, 1.0),
        },
        GateKind::Sdg => Step::Phase {
            qbit: tbit,
            phase: Complex::new(0.0, -1.0),
        },
        GateKind::Z => Step::Phase {
            qbit: tbit,
            phase: Complex::new(-1.0, 0.0),
        },
    }
}

/// Whether a qubit occurs in a sorted control list.
fn controls_contain(controls: &[Qubit], qubit: Qubit) -> bool {
    controls.binary_search(&qubit).is_ok()
}

/// Exact operand-level overlap test between two gates (both control lists
/// are sorted and deduplicated by construction).
fn views_overlap(a: GateView<'_>, b: GateView<'_>) -> bool {
    if a.target == b.target
        || controls_contain(a.controls, b.target)
        || controls_contain(b.controls, a.target)
    {
        return true;
    }
    // Sorted-merge intersection of the control lists.
    let (mut i, mut j) = (0, 0);
    while i < a.controls.len() && j < b.controls.len() {
        match a.controls[i].cmp(&b.controls[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Whether an MCH at `index` may join the current batch: its qubits must
/// be disjoint from every gate already batched.
///
/// Folded-footprint soundness guard: disjoint masks always prove disjoint
/// qubits (a shared qubit collides at the same folded bit), so the fast
/// path is sound at any width. A mask *collision* proves overlap only
/// while the masks are exact (≤ 64 qubits); beyond that the fold makes
/// distinct qubits collide (e.g. 3 and 67), so the scheduler re-checks the
/// actual operand lists before refusing the batch.
fn mch_can_join(
    circuit: &Circuit,
    index: usize,
    batch_mask: u64,
    batch: &[usize],
    num_qubits: u32,
) -> bool {
    if circuit.footprint(index).mask() & batch_mask == 0 {
        return true;
    }
    if num_qubits <= 64 {
        return false;
    }
    let view = circuit.view(index);
    !batch.iter().any(|&j| views_overlap(view, circuit.view(j)))
}

/// Run a whole circuit through the batched engine. Semantics match the
/// per-gate loop: stops at the first out-of-range gate with every earlier
/// gate applied.
pub(crate) fn run_batched<K: BasisKey>(
    state: &mut KeyedSparseState<K>,
    circuit: &Circuit,
) -> Result<(), QcircError> {
    let num_qubits = state.num_qubits;
    let phases = PhaseTable::new();
    let mut steps: Vec<Step<K>> = Vec::with_capacity(circuit.len());
    // Gate indices of the current batch: only consulted by the exact
    // fallback, which only exists beyond the masks' exact range.
    let folded = num_qubits > 64;
    let mut batch: Vec<usize> = Vec::new();
    let mut batch_mask = 0u64;
    let mut branching = 0u32;
    for index in 0..circuit.len() {
        let view = circuit.view(index);
        if view.max_qubit() >= num_qubits {
            apply_batch(state, &steps, branching > 0);
            return Err(QcircError::QubitOutOfRange {
                qubit: view.max_qubit(),
                num_qubits,
            });
        }
        if view.kind == GateKind::Mch {
            if branching >= state.exec.max_branching
                || !mch_can_join(circuit, index, batch_mask, &batch, num_qubits)
            {
                apply_batch(state, &steps, branching > 0);
                steps.clear();
                batch.clear();
                batch_mask = 0;
                branching = 0;
            }
            branching += 1;
        }
        steps.push(step_of(view, &phases));
        if folded {
            batch.push(index);
        }
        batch_mask |= circuit.footprint(index).mask();
    }
    apply_batch(state, &steps, branching > 0);
    Ok(())
}

/// Apply one batch of lowered steps, choosing the sequential or parallel
/// strategy by current support.
fn apply_batch<K: BasisKey>(state: &mut KeyedSparseState<K>, steps: &[Step<K>], interfering: bool) {
    if steps.is_empty() || state.amps.is_empty() {
        return;
    }
    if state.exec.threads > 1 && state.amps.len() >= state.exec.parallel_threshold.max(1) {
        apply_parallel(state, steps, interfering);
    } else {
        apply_sequential(state, steps, interfering);
    }
}

/// Evolve one stored amplitude through the whole batch by depth-first
/// branch walk: the current branch's key and amplitude stay in scalar
/// registers through the step run, and each MCH split pushes the partner
/// branch (with its resume position) onto `stack`. `stack` and `out` are
/// caller scratch; on return `out` holds the entry's output branches.
fn expand<K: BasisKey>(
    steps: &[Step<K>],
    key: K,
    amp: Complex,
    stack: &mut Vec<(usize, K, Complex)>,
    out: &mut Vec<(K, Complex)>,
) {
    out.clear();
    stack.clear();
    stack.push((0, key, amp));
    while let Some((start, mut k, mut a)) = stack.pop() {
        for (pos, step) in steps[start..].iter().enumerate() {
            match *step {
                Step::Permute { cmask, tbit } => {
                    if k.contains(cmask) {
                        k = k.xor(tbit);
                    }
                }
                Step::Phase { qbit, phase } => {
                    if !k.and(qbit).is_zero() {
                        a = a * phase;
                    }
                }
                Step::Branch { cmask, tbit } => {
                    if k.contains(cmask) {
                        let half = a.scale(FRAC_1_SQRT_2);
                        // Partner key (target bit flipped) always gets
                        // +half; this branch keeps the Hadamard sign.
                        stack.push((start + pos + 1, k.xor(tbit), half));
                        a = if k.and(tbit).is_zero() { half } else { -half };
                    }
                }
            }
        }
        out.push((k, a));
    }
}

fn apply_sequential<K: BasisKey>(
    state: &mut KeyedSparseState<K>,
    steps: &[Step<K>],
    interfering: bool,
) {
    if !interfering {
        if steps.iter().all(|s| matches!(s, Step::Phase { .. })) {
            // Diagonal batch: keys are untouched, no rebuild at all.
            for (k, a) in &mut state.amps {
                for step in steps {
                    if let Step::Phase { qbit, phase } = *step {
                        if !k.and(qbit).is_zero() {
                            *a = *a * phase;
                        }
                    }
                }
            }
            return;
        }
        // Monomial batch: injective, one rebuild, no pruning needed.
        let mut next: HashMap<K, Complex> = HashMap::with_capacity(state.amps.len());
        for (mut k, mut a) in state.amps.drain() {
            for step in steps {
                match *step {
                    Step::Permute { cmask, tbit } => {
                        if k.contains(cmask) {
                            k = k.xor(tbit);
                        }
                    }
                    Step::Phase { qbit, phase } => {
                        if !k.and(qbit).is_zero() {
                            a = a * phase;
                        }
                    }
                    Step::Branch { .. } => unreachable!("monomial batch"),
                }
            }
            next.insert(k, a);
        }
        state.amps = next;
        return;
    }
    // Branching batch: expand each entry, accumulate interference, prune.
    let mut next: HashMap<K, Complex> = HashMap::with_capacity(state.amps.len() * 2);
    let mut stack: Vec<(usize, K, Complex)> = Vec::with_capacity(8);
    let mut scratch: Vec<(K, Complex)> = Vec::with_capacity(8);
    for (k, a) in state.amps.drain() {
        expand(steps, k, a, &mut stack, &mut scratch);
        for &(k2, a2) in &scratch {
            *next.entry(k2).or_insert(Complex::ZERO) += a2;
        }
    }
    let eps_sqr = state.epsilon * state.epsilon;
    next.retain(|_, a| a.norm_sqr() > eps_sqr);
    state.amps = next;
}

/// Shard-by-hash parallel application: workers expand disjoint entry
/// slices into per-shard buckets, then the shards are merged and pruned
/// independently. Every contribution to a given key hashes to the same
/// shard, so the merge needs no synchronization.
fn apply_parallel<K: BasisKey>(
    state: &mut KeyedSparseState<K>,
    steps: &[Step<K>],
    interfering: bool,
) {
    let entries: Vec<(K, Complex)> = state.amps.drain().collect();
    let workers = state.exec.threads.min(entries.len()).max(1);
    let shards = workers.next_power_of_two();
    let chunk = entries.len().div_ceil(workers);
    let buckets: Vec<Vec<Vec<(K, Complex)>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = entries
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut local: Vec<Vec<(K, Complex)>> =
                        (0..shards).map(|_| Vec::new()).collect();
                    let mut stack: Vec<(usize, K, Complex)> = Vec::with_capacity(8);
                    let mut scratch: Vec<(K, Complex)> = Vec::with_capacity(8);
                    for &(k, a) in slice {
                        expand(steps, k, a, &mut stack, &mut scratch);
                        for &(k2, a2) in &scratch {
                            local[(k2.hash64() as usize) & (shards - 1)].push((k2, a2));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sparse worker panicked"))
            .collect()
    });
    // Merge phase: workers are visited in index order per shard, so for a
    // fixed entry snapshot the accumulation order is deterministic.
    let eps_sqr = state.epsilon * state.epsilon;
    let shard_maps: Vec<HashMap<K, Complex>> = std::thread::scope(|scope| {
        let buckets = &buckets;
        let handles: Vec<_> = (0..shards)
            .map(|s| {
                scope.spawn(move || {
                    let total: usize = buckets.iter().map(|w| w[s].len()).sum();
                    let mut map: HashMap<K, Complex> = HashMap::with_capacity(total);
                    for worker in buckets {
                        for &(k, a) in &worker[s] {
                            *map.entry(k).or_insert(Complex::ZERO) += a;
                        }
                    }
                    if interfering {
                        map.retain(|_, a| a.norm_sqr() > eps_sqr);
                    }
                    map
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sparse merge panicked"))
            .collect()
    });
    let total: usize = shard_maps.iter().map(HashMap::len).sum();
    let mut next: HashMap<K, Complex> = HashMap::with_capacity(total);
    for map in shard_maps {
        next.extend(map);
    }
    state.amps = next;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::sim::key::Key256;
    use crate::sim::{SparseState, SparseState256};

    /// Reference: apply the circuit gate by gate (the pre-batching path).
    fn run_gatewise<K: BasisKey>(state: &mut KeyedSparseState<K>, circuit: &Circuit) {
        for view in circuit {
            state.apply_view(view).unwrap();
        }
    }

    fn h_layer_circuit(n: u32, hs: &[u32]) -> Circuit {
        let mut c = Circuit::new(n);
        for &q in hs {
            c.push(Gate::h(q));
        }
        for q in 1..n.min(20) {
            c.push(Gate::cnot(q - 1, q));
        }
        for q in 0..n.min(20) {
            c.push(Gate::T(q));
        }
        for &q in hs {
            c.push(Gate::h(q));
        }
        c
    }

    #[test]
    fn batched_matches_gatewise_on_interfering_circuits() {
        for hs in [&[0u32][..], &[0, 5, 9], &[2, 2, 7]] {
            let circuit = h_layer_circuit(24, hs);
            let mut batched = SparseState::basis(24, 0b1011).unwrap();
            batched.run(&circuit).unwrap();
            let mut gatewise = SparseState::basis(24, 0b1011).unwrap();
            run_gatewise(&mut gatewise, &circuit);
            assert!(
                batched.approx_eq_exact(&gatewise, 1e-12),
                "hs {hs:?}: batched and gatewise runs disagree"
            );
        }
    }

    #[test]
    fn error_position_matches_gatewise_semantics() {
        // Gates before the out-of-range one must have been applied.
        let mut c = Circuit::new(4);
        c.push(Gate::x(0));
        c.push(Gate::x(7));
        let mut s = SparseState::basis(4, 0).unwrap();
        assert!(matches!(
            s.run(&c),
            Err(QcircError::QubitOutOfRange { qubit: 7, .. })
        ));
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    /// Regression for the folded-footprint guard: at >64 qubits, H(3) and
    /// H(67) collide in the folded mask (both at bit 3) while sharing no
    /// qubit — the scheduler must fall back to the operand lists and batch
    /// them, and must still refuse genuinely overlapping pairs.
    #[test]
    fn folded_masks_fall_back_to_exact_operands() {
        let mut wide = Circuit::new(130);
        wide.push(Gate::h(3));
        wide.push(Gate::h(67));
        assert_ne!(
            wide.footprint(0).mask() & wide.footprint(1).mask(),
            0,
            "test premise: the folded masks must collide"
        );
        assert!(
            mch_can_join(&wide, 1, wide.footprint(0).mask(), &[0], 130),
            "mask-colliding but disjoint pair must join the batch"
        );

        let mut clash = Circuit::new(130);
        clash.push(Gate::h(3));
        clash.push(Gate::ch(3, 67));
        assert!(
            !mch_can_join(&clash, 1, clash.footprint(0).mask(), &[0], 130),
            "genuinely overlapping pair must flush"
        );

        // Within exact range a mask collision *is* an overlap proof.
        let mut narrow = Circuit::new(30);
        narrow.push(Gate::h(3));
        narrow.push(Gate::h(3));
        assert!(!mch_can_join(
            &narrow,
            1,
            narrow.footprint(0).mask(),
            &[0],
            30
        ));

        // End to end: the wide pair computes the same state either way.
        let mut batched = SparseState256::basis(130, 0).unwrap();
        batched.run(&wide).unwrap();
        let mut gatewise = SparseState256::basis(130, 0).unwrap();
        run_gatewise(&mut gatewise, &wide);
        assert_eq!(batched.support(), 4);
        assert!(batched.approx_eq_exact(&gatewise, 1e-12));
    }

    #[test]
    fn overlapping_hadamards_still_prune_between_batches() {
        // H(q); H(q) across a batch boundary must cancel back to support 1,
        // exactly as in the per-gate engine.
        let mut c = Circuit::new(70);
        c.push(Gate::h(9));
        c.push(Gate::h(9));
        let mut s = SparseState256::basis(70, 0).unwrap();
        s.run(&c).unwrap();
        assert_eq!(s.support(), 1);
    }

    #[test]
    fn parallel_matches_sequential_on_large_support() {
        // 12 disjoint Hadamards → support 4096, crossing a lowered
        // parallel threshold; then a T layer and a re-entangling ladder.
        let hs: Vec<u32> = (0..12).collect();
        let circuit = h_layer_circuit(24, &hs);
        let exec = ExecConfig {
            threads: 4,
            parallel_threshold: 16,
            max_branching: 4,
        };
        let mut par = SparseState::basis(24, 0).unwrap().with_exec(exec);
        par.run(&circuit).unwrap();
        let mut seq = SparseState::basis(24, 0)
            .unwrap()
            .with_exec(ExecConfig { threads: 1, ..exec });
        seq.run(&circuit).unwrap();
        assert!(par.support() > 0);
        assert_eq!(par.support(), seq.support());
        assert!(par.approx_eq(&seq, 1e-9), "parallel and sequential differ");
        assert!((par.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_parallel_run_preserves_norm() {
        let hs: Vec<u32> = (0..10).map(|i| 60 + 7 * i).collect();
        let mut c = Circuit::new(256);
        for &q in &hs {
            c.push(Gate::h(q));
        }
        for &q in &hs {
            c.push(Gate::cnot(q, q + 1));
        }
        let mut s = SparseState256::basis(256, 0)
            .unwrap()
            .with_exec(ExecConfig {
                threads: 3,
                parallel_threshold: 8,
                max_branching: 16,
            });
        s.run(&c).unwrap();
        assert_eq!(s.support(), 1 << hs.len());
        assert!((s.norm() - 1.0).abs() < 1e-9);
        assert!(s.amplitude_key(Key256::zero()).norm_sqr() > 0.0);
    }
}
