//! Circuit simulators used to validate the paper's equivalence theorems.
//!
//! * [`BasisState`] — a classical reversible simulator for MCX-level
//!   circuits. Every Tower benchmark program is Hadamard-free, so its
//!   compiled circuit permutes basis states; this simulator executes those
//!   permutations in linear time and is the workhorse of the
//!   optimization-soundness property tests (paper Theorems 6.3 and 6.5,
//!   Definition 6.2).
//! * [`StateVec`] — a dense state-vector simulator supporting the full gate
//!   set (including Hadamard and the phase gates), used to verify the
//!   Clifford+T decompositions exactly, phases included. Allocates all 2ⁿ
//!   amplitudes, so it is capped at small registers.
//! * [`SparseState`] — a sparse amplitude-map simulator over the full gate
//!   set. Cost scales with the support of the state rather than the
//!   register width, which is what lets the differential-testing harness
//!   equivalence-check compiled programs at paper-sized qubit counts. The
//!   basis key is generic ([`BasisKey`]): the default `u64` key reaches 64
//!   qubits at the historical layout, and the [`WideKey`]-backed
//!   [`SparseState128`] / [`SparseState256`] aliases reach 128 / 256.
//!   Whole-circuit runs go through a batched engine that fuses
//!   Hadamard-free gate runs and shards large states across threads
//!   ([`ExecConfig`]).
//!
//! All three implement the [`Simulator`] trait, so machinery built on top
//! (notably `spire::Machine` and the workspace equivalence tests) can swap
//! backends freely.

mod classical;
mod complex;
mod exec;
mod key;
mod sparse;
mod statevec;

pub use classical::BasisState;
pub use complex::Complex;
pub use exec::ExecConfig;
pub use key::{BasisKey, Key128, Key256, WideKey};
pub use sparse::{KeyedSparseState, SparseState, SparseState128, SparseState256};
pub use statevec::StateVec;

use crate::circuit::Circuit;
use crate::error::QcircError;
use crate::gate::{Gate, GateView, Qubit};

/// A circuit-execution backend.
///
/// The trait covers what the register-level machinery needs from a
/// simulator: construction in the all-zero state, gate application, and
/// classical access to qubit ranges (initializing inputs, reading outputs,
/// checking Definition 6.2's everything-else-is-zero requirement).
///
/// Backends differ in reach, not interface:
///
/// | backend | gate set | register size | cost per gate |
/// |---|---|---|---|
/// | [`BasisState`] | MCX only | unbounded | O(1) |
/// | [`StateVec`] | full | ≤ 26 qubits | O(2ⁿ) |
/// | [`SparseState`] | full | ≤ 64 qubits | O(support) |
/// | [`SparseState128`] / [`SparseState256`] | full | ≤ 128 / 256 qubits | O(support) |
///
/// # Example
///
/// ```
/// use qcirc::{Circuit, Gate};
/// use qcirc::sim::{BasisState, Simulator, SparseState};
///
/// fn run_and_read<S: Simulator>(circuit: &Circuit) -> Option<u64> {
///     let mut sim = S::zeroed(circuit.num_qubits()).unwrap();
///     sim.run(circuit).ok()?;
///     sim.read_range(0, 2)
/// }
///
/// let mut circuit = Circuit::new(2);
/// circuit.push(Gate::x(1));
/// assert_eq!(run_and_read::<BasisState>(&circuit), Some(0b10));
/// assert_eq!(run_and_read::<SparseState>(&circuit), Some(0b10));
/// ```
pub trait Simulator {
    /// The all-zero state of `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// [`QcircError::TooManyQubits`] if the backend cannot represent a
    /// register of this size.
    fn zeroed(num_qubits: u32) -> Result<Self, QcircError>
    where
        Self: Sized;

    /// Number of qubits in the register.
    fn num_qubits(&self) -> u32;

    /// Apply a single gate by view (the packed circuit's native currency;
    /// no gate is materialized).
    ///
    /// # Errors
    ///
    /// [`QcircError::QubitOutOfRange`] for out-of-range qubits;
    /// [`QcircError::NotClassical`] from backends that do not support the
    /// gate (Hadamard or phase gates on [`BasisState`]).
    fn apply_view(&mut self, view: GateView<'_>) -> Result<(), QcircError>;

    /// Apply a single owned gate.
    ///
    /// # Errors
    ///
    /// As [`Simulator::apply_view`].
    fn apply_gate(&mut self, gate: &Gate) -> Result<(), QcircError> {
        self.apply_view(gate.as_view())
    }

    /// Run a whole circuit.
    ///
    /// # Errors
    ///
    /// Stops at the first failing gate (see [`Simulator::apply_view`]).
    fn run(&mut self, circuit: &Circuit) -> Result<(), QcircError> {
        for view in circuit {
            self.apply_view(view)?;
        }
        Ok(())
    }

    /// Read `width ≤ 64` consecutive qubits starting at `offset` as a
    /// little-endian unsigned integer, or `None` if the range does not hold
    /// a single classical value (it is in superposition).
    fn read_range(&self, offset: Qubit, width: u32) -> Option<u64>;

    /// Overwrite `width ≤ 64` consecutive qubits starting at `offset` with
    /// the low bits of `value`.
    ///
    /// This is classical initialization, not a unitary: quantum backends
    /// re-key their amplitudes, which is only meaningful when the target
    /// qubits are unentangled with the rest of the register (as they are
    /// when setting up inputs).
    fn write_range(&mut self, offset: Qubit, width: u32, value: u64);

    /// Whether every qubit outside the given `(offset, width)` ranges is
    /// zero in every branch of the state — Definition 6.2's requirement on
    /// non-live registers.
    fn zero_outside(&self, keep: &[(Qubit, u32)]) -> bool;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn roundtrip<S: Simulator>() {
        let mut sim = S::zeroed(12).unwrap();
        assert_eq!(Simulator::num_qubits(&sim), 12);
        sim.write_range(3, 5, 0b10111);
        assert_eq!(sim.read_range(3, 5), Some(0b10111));
        assert!(sim.zero_outside(&[(3, 5)]));
        assert!(!sim.zero_outside(&[(4, 4)]));
        let mut circuit = Circuit::new(12);
        circuit.push(Gate::cnot(4, 11));
        sim.run(&circuit).unwrap();
        assert_eq!(sim.read_range(11, 1), Some(1));
    }

    #[test]
    fn all_backends_agree_on_classical_circuits() {
        roundtrip::<BasisState>();
        roundtrip::<StateVec>();
        roundtrip::<SparseState>();
    }
}
