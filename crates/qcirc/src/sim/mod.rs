//! Circuit simulators used to validate the paper's equivalence theorems.
//!
//! * [`BasisState`] — a classical reversible simulator for MCX-level
//!   circuits. Every Tower benchmark program is Hadamard-free, so its
//!   compiled circuit permutes basis states; this simulator executes those
//!   permutations in linear time and is the workhorse of the
//!   optimization-soundness property tests (paper Theorems 6.3 and 6.5,
//!   Definition 6.2).
//! * [`StateVec`] — a dense state-vector simulator supporting the full gate
//!   set (including Hadamard and the phase gates), used to verify the
//!   Clifford+T decompositions exactly, phases included.

mod classical;
mod complex;
mod statevec;

pub use classical::BasisState;
pub use complex::Complex;
pub use statevec::StateVec;
