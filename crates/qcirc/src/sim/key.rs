//! Fixed-width basis keys for the sparse simulator.
//!
//! [`SparseState`](crate::sim::SparseState) stores amplitudes in a map
//! keyed by basis index. Historically the key was a bare `u64`, which caps
//! the register at 64 qubits. [`BasisKey`] abstracts the handful of bit
//! operations the simulator actually performs on keys — single-bit masks,
//! contiguous range extraction/deposit, and the boolean algebra used by
//! control masks — so the same simulator code runs over `u64` (the exact
//! historical layout, zero overhead) or [`WideKey`] (a small `[u64; W]`
//! array reaching 65–256 qubits).
//!
//! Keys are little-endian throughout: qubit `q` is bit `q % 64` of word
//! `q / 64`, matching the `u64` layout word-for-word on the low 64 qubits.

use std::fmt::Debug;
use std::hash::Hash;

/// A fixed-width basis index: the key type of the sparse amplitude map.
///
/// Implementations are plain bit vectors with one bit per qubit. All
/// operations are total over the key width; callers guarantee that qubit
/// and range arguments stay below [`BasisKey::MAX_QUBITS`] (the simulator
/// checks register bounds before touching keys).
pub trait BasisKey: Copy + Eq + Hash + Debug + Default + Send + Sync + 'static {
    /// Widest register this key can address (64 bits per word).
    const MAX_QUBITS: u32;

    /// The all-zero key.
    #[must_use]
    fn zero() -> Self;

    /// The key whose low 64 bits are `index` and whose remaining bits are
    /// zero.
    #[must_use]
    fn from_index(index: u64) -> Self;

    /// The low 64 bits of the key.
    #[must_use]
    fn low_u64(self) -> u64;

    /// The key with exactly bit `qubit` set.
    #[must_use]
    fn single(qubit: u32) -> Self;

    /// A mask of `width` consecutive set bits starting at `offset`
    /// (`width ≤ 64`; the range may straddle a word boundary).
    #[must_use]
    fn range_mask(offset: u32, width: u32) -> Self;

    /// Bitwise OR.
    #[must_use]
    fn or(self, other: Self) -> Self;

    /// Bitwise AND.
    #[must_use]
    fn and(self, other: Self) -> Self;

    /// Bitwise XOR.
    #[must_use]
    fn xor(self, other: Self) -> Self;

    /// Bitwise complement (over the full key width, not the register).
    #[must_use]
    fn not(self) -> Self;

    /// Whether no bit is set.
    #[must_use]
    fn is_zero(self) -> bool;

    /// Whether every bit of `mask` is set in `self` (control-mask test).
    #[must_use]
    fn contains(self, mask: Self) -> bool {
        self.and(mask) == mask
    }

    /// Whether bit `qubit` is set.
    #[must_use]
    fn test(self, qubit: u32) -> bool {
        !self.and(Self::single(qubit)).is_zero()
    }

    /// Read `width ≤ 64` consecutive bits starting at `offset` as a
    /// little-endian integer.
    #[must_use]
    fn extract(self, offset: u32, width: u32) -> u64;

    /// The key holding the low `width ≤ 64` bits of `value` at `offset`
    /// (all other bits zero).
    #[must_use]
    fn deposit(offset: u32, width: u32, value: u64) -> Self;

    /// A well-mixed 64-bit hash of the key, used to shard the amplitude
    /// map across parallel workers. Deterministic (unlike the map's own
    /// seeded hasher) so shard assignment is stable across runs.
    #[must_use]
    fn hash64(self) -> u64;
}

/// SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// `width ≤ 64` set bits starting at bit `offset` of one word.
#[inline]
fn word_mask(offset: u32, width: u32) -> u64 {
    if width == 0 {
        0
    } else if width == 64 {
        u64::MAX << offset
    } else {
        ((1u64 << width) - 1) << offset
    }
}

impl BasisKey for u64 {
    const MAX_QUBITS: u32 = 64;

    #[inline]
    fn zero() -> Self {
        0
    }

    #[inline]
    fn from_index(index: u64) -> Self {
        index
    }

    #[inline]
    fn low_u64(self) -> u64 {
        self
    }

    #[inline]
    fn single(qubit: u32) -> Self {
        1u64 << qubit
    }

    #[inline]
    fn range_mask(offset: u32, width: u32) -> Self {
        word_mask(offset, width)
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        self | other
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        self & other
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        self ^ other
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn is_zero(self) -> bool {
        self == 0
    }

    #[inline]
    fn extract(self, offset: u32, width: u32) -> u64 {
        if width == 0 {
            0
        } else {
            (self >> offset) & (u64::MAX >> (64 - width))
        }
    }

    #[inline]
    fn deposit(offset: u32, width: u32, value: u64) -> Self {
        (value << offset) & word_mask(offset, width)
    }

    #[inline]
    fn hash64(self) -> u64 {
        mix64(self)
    }
}

/// A basis key of `W` little-endian 64-bit words: qubit `q` is bit
/// `q % 64` of word `q / 64`. `WideKey<2>` reaches 128 qubits,
/// `WideKey<4>` reaches 256.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideKey<const W: usize>([u64; W]);

impl<const W: usize> Default for WideKey<W> {
    fn default() -> Self {
        WideKey([0; W])
    }
}

impl<const W: usize> WideKey<W> {
    /// Build a key from its little-endian words.
    #[must_use]
    pub fn from_words(words: [u64; W]) -> Self {
        WideKey(words)
    }

    /// The key's little-endian words.
    #[must_use]
    pub fn words(self) -> [u64; W] {
        self.0
    }
}

impl<const W: usize> BasisKey for WideKey<W> {
    const MAX_QUBITS: u32 = 64 * W as u32;

    #[inline]
    fn zero() -> Self {
        WideKey([0; W])
    }

    #[inline]
    fn from_index(index: u64) -> Self {
        let mut words = [0; W];
        words[0] = index;
        WideKey(words)
    }

    #[inline]
    fn low_u64(self) -> u64 {
        self.0[0]
    }

    #[inline]
    fn single(qubit: u32) -> Self {
        let mut words = [0; W];
        words[qubit as usize / 64] = 1u64 << (qubit % 64);
        WideKey(words)
    }

    fn range_mask(offset: u32, width: u32) -> Self {
        let (start, end) = (u64::from(offset), u64::from(offset + width));
        let mut words = [0; W];
        for (w, word) in words.iter_mut().enumerate() {
            let base = 64 * w as u64;
            let lo = start.max(base);
            let hi = end.min(base + 64);
            if lo < hi {
                *word = word_mask((lo - base) as u32, (hi - lo) as u32);
            }
        }
        WideKey(words)
    }

    #[inline]
    fn or(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w |= o;
        }
        WideKey(words)
    }

    #[inline]
    fn and(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w &= o;
        }
        WideKey(words)
    }

    #[inline]
    fn xor(self, other: Self) -> Self {
        let mut words = self.0;
        for (w, o) in words.iter_mut().zip(other.0) {
            *w ^= o;
        }
        WideKey(words)
    }

    #[inline]
    fn not(self) -> Self {
        let mut words = self.0;
        for w in &mut words {
            *w = !*w;
        }
        WideKey(words)
    }

    #[inline]
    fn is_zero(self) -> bool {
        self.0.iter().all(|&w| w == 0)
    }

    #[inline]
    fn test(self, qubit: u32) -> bool {
        (self.0[qubit as usize / 64] >> (qubit % 64)) & 1 != 0
    }

    fn extract(self, offset: u32, width: u32) -> u64 {
        if width == 0 {
            return 0;
        }
        let (w, r) = (offset as usize / 64, offset % 64);
        let mut bits = self.0[w] >> r;
        // A nonzero shift means the range may straddle into the next word;
        // `offset + width ≤ 64·W` guarantees that word exists when needed.
        if r != 0 && w + 1 < W {
            bits |= self.0[w + 1] << (64 - r);
        }
        bits & (u64::MAX >> (64 - width))
    }

    fn deposit(offset: u32, width: u32, value: u64) -> Self {
        if width == 0 {
            return Self::zero();
        }
        let masked = value & (u64::MAX >> (64 - width));
        let (w, r) = (offset as usize / 64, offset % 64);
        let mut words = [0; W];
        words[w] = masked << r;
        if r != 0 && w + 1 < W {
            words[w + 1] = masked >> (64 - r);
        }
        WideKey(words)
    }

    #[inline]
    fn hash64(self) -> u64 {
        let mut h = 0x51_7c_c1_b7_27_22_0a_95u64;
        for w in self.0 {
            h = mix64(h ^ w);
        }
        h
    }
}

/// A 128-qubit basis key (two words).
pub type Key128 = WideKey<2>;

/// A 256-qubit basis key (four words).
pub type Key256 = WideKey<4>;

#[cfg(test)]
mod tests {
    use super::*;

    /// Wide keys must agree with the `u64` impl on every operation whose
    /// arguments fit in the low word.
    #[test]
    fn wide_matches_u64_on_low_word() {
        for index in [0u64, 1, 0b1011, u64::MAX / 3, u64::MAX] {
            let narrow = index;
            let wide = Key128::from_index(index);
            assert_eq!(wide.low_u64(), narrow);
            for q in [0u32, 1, 13, 63] {
                assert_eq!(wide.test(q), BasisKey::test(narrow, q));
                assert_eq!(wide.xor(Key128::single(q)).low_u64(), narrow ^ (1u64 << q));
            }
            for (off, width) in [(0u32, 7u32), (3, 13), (0, 64), (60, 4)] {
                assert_eq!(
                    wide.extract(off, width),
                    BasisKey::extract(narrow, off, width)
                );
            }
        }
    }

    #[test]
    fn range_mask_straddles_word_boundary() {
        let m = Key128::range_mask(60, 10);
        assert_eq!(m.words()[0], 0b1111u64 << 60);
        assert_eq!(m.words()[1], 0b11_1111);
        assert_eq!(Key256::range_mask(128, 64).words(), [0, 0, u64::MAX, 0]);
        assert_eq!(Key128::range_mask(5, 0), Key128::zero());
    }

    #[test]
    fn extract_deposit_roundtrip_across_words() {
        for (off, width, value) in [
            (0u32, 17u32, 0x1_5a5au64),
            (60, 24, 0xdead_beef),
            (120, 8, 0xff),
            (64, 64, u64::MAX - 7),
            (190, 33, 0x1_2345_6789),
        ] {
            let k = Key256::deposit(off, width, value);
            let want = if width == 64 {
                value
            } else {
                value & ((1u64 << width) - 1)
            };
            assert_eq!(k.extract(off, width), want, "off {off} width {width}");
            // Nothing outside the range is set.
            assert!(k.and(Key256::range_mask(off, width).not()).is_zero());
        }
    }

    #[test]
    fn single_bit_lands_in_the_right_word() {
        for q in [0u32, 63, 64, 127, 128, 255] {
            let k = Key256::single(q);
            assert!(k.test(q));
            assert_eq!(k.extract(q, 1), 1);
            assert!(k.xor(Key256::single(q)).is_zero());
        }
    }

    #[test]
    fn hash64_spreads_neighbouring_keys() {
        // Not a statistical test — just that adjacent keys do not collide
        // and wide hashing sees the high words.
        let a = Key256::single(200).hash64();
        let b = Key256::single(201).hash64();
        let c = Key256::zero().hash64();
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(BasisKey::hash64(1u64), BasisKey::hash64(2u64));
    }
}
