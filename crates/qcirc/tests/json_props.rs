//! Property test for the shared JSON module: `parse ∘ write` is the
//! identity on generated values. Every machine-readable artifact the
//! workspace writes and every `spire-serve` request body it reads goes
//! through this module, so the round trip is load-bearing: the server's
//! view of a request must be exactly what a client serialized.

use proptest::collection::vec;
use proptest::prelude::*;
use qcirc::json::{parse, Json};

/// Strings over a mix of plain text, escapes, and non-ASCII codepoints
/// (surrogate range excluded — those have no scalar value).
fn arb_string() -> BoxedStrategy<String> {
    vec(0u32..0x2_0000, 0..8)
        .prop_map(|codes| {
            codes
                .into_iter()
                .filter_map(char::from_u32)
                .collect::<String>()
        })
        .boxed()
}

fn arb_scalar() -> BoxedStrategy<Json> {
    prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool).boxed(),
        any::<i64>().prop_map(Json::Int).boxed(),
        // Unsigned values beyond i64::MAX keep their own variant.
        ((i64::MAX as u64 + 1)..=u64::MAX)
            .prop_map(Json::UInt)
            .boxed(),
        // Floats from a wide dyadic family (sign * mantissa / 2^shift):
        // always finite, frequently non-integral, and exercising the
        // shortest-roundtrip Display path.
        (any::<i32>(), 0u32..40)
            .prop_map(|(m, shift)| { Json::Float(m as f64 / f64::from(2u32.pow(shift % 32))) })
            .boxed(),
        arb_string().prop_map(Json::Str).boxed(),
    ]
    .boxed()
}

fn arb_json(depth: usize) -> BoxedStrategy<Json> {
    if depth == 0 {
        return arb_scalar();
    }
    let inner = arb_json(depth - 1);
    let arrays = vec(arb_json(depth - 1), 0..4).prop_map(Json::Array).boxed();
    let objects = vec((arb_string(), inner), 0..4)
        .prop_map(Json::Object)
        .boxed();
    prop_oneof![arb_scalar(), arrays, objects].boxed()
}

// Writing maps integral `Float`s to a `.0` spelling that parses back as
// `Float`, so every generated variant survives the round trip; duplicate
// object keys are preserved verbatim in both directions.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_write_is_identity(value in arb_json(3)) {
        let text = value.to_string();
        let reparsed = parse(&text).unwrap_or_else(|e| panic!("own output `{text}` rejected: {e}"));
        prop_assert_eq!(&reparsed, &value, "wrote `{}`", text);
        // Writing the reparse is also byte-stable (a fixed point).
        prop_assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(chunk in vec(0u8..=255, 0..64)) {
        let text = String::from_utf8_lossy(&chunk);
        let _ = parse(&text); // must return, not panic
    }
}
