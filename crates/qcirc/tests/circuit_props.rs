//! Property-based tests over random circuits: `.qc` round-trips,
//! decomposition exactness, inverse composition, and histogram/T-count
//! consistency.

use proptest::prelude::*;
use qcirc::sim::StateVec;
use qcirc::{decompose, qcformat, Circuit, Gate};

const QUBITS: u32 = 5;

/// Strategy for a random gate over a small register.
fn arb_gate() -> impl Strategy<Value = Gate> {
    let qubit = 0..QUBITS;
    prop_oneof![
        qubit.clone().prop_map(Gate::x),
        qubit.clone().prop_map(Gate::h),
        qubit.clone().prop_map(Gate::T),
        qubit.clone().prop_map(Gate::Tdg),
        qubit.clone().prop_map(Gate::S),
        qubit.clone().prop_map(Gate::Sdg),
        qubit.clone().prop_map(Gate::Z),
        (0..QUBITS, 0..QUBITS)
            .prop_filter("distinct", |(c, t)| c != t)
            .prop_map(|(c, t)| Gate::cnot(c, t)),
        (0..QUBITS, 0..QUBITS, 0..QUBITS)
            .prop_filter("distinct", |(a, b, t)| a != b && a != t && b != t)
            .prop_map(|(a, b, t)| Gate::toffoli(a, b, t)),
        proptest::collection::vec(0..QUBITS, 3..=4)
            .prop_filter("distinct controls and target", |qs| {
                let mut sorted = qs.clone();
                sorted.sort_unstable();
                sorted.dedup();
                sorted.len() == qs.len()
            })
            .prop_map(|mut qs| {
                let target = qs.pop().expect("nonempty");
                Gate::mcx(qs, target)
            }),
    ]
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    proptest::collection::vec(arb_gate(), 0..24).prop_map(|gates| {
        let mut circuit = Circuit::new(QUBITS);
        circuit.extend(gates);
        circuit
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing and parsing `.qc` text is the identity on gate lists.
    #[test]
    fn qc_format_roundtrips(circuit in arb_circuit()) {
        let text = qcformat::write(&circuit);
        let parsed = qcformat::parse(&text).expect("written circuits parse");
        prop_assert_eq!(parsed, circuit);
    }

    /// A circuit followed by its inverse is the identity on every basis
    /// state (phases included).
    #[test]
    fn circuit_times_inverse_is_identity(circuit in arb_circuit(), basis in 0u64..32) {
        let mut state = StateVec::basis(QUBITS, basis).expect("small register");
        state.run(&circuit).expect("valid gates");
        state.run(&circuit.inverse()).expect("valid gates");
        let reference = StateVec::basis(QUBITS, basis).expect("small register");
        prop_assert!(state.approx_eq_exact(&reference, 1e-6));
    }

    /// Full Clifford+T lowering preserves the unitary action on the
    /// original wires (ancillas return to zero).
    #[test]
    fn clifford_t_lowering_is_exact(circuit in arb_circuit(), basis in 0u64..32) {
        let lowered = decompose::to_clifford_t(&circuit).expect("lowering succeeds");
        let total = lowered.num_qubits().max(QUBITS);
        let mut a = StateVec::basis(total, basis).expect("small register");
        a.run(&circuit).expect("valid gates");
        let mut b = StateVec::basis(total, basis).expect("small register");
        b.run(&lowered).expect("valid gates");
        prop_assert!(
            (a.fidelity(&b) - 1.0).abs() < 1e-6,
            "fidelity {} after lowering",
            a.fidelity(&b)
        );
    }

    /// The histogram T-complexity equals the decomposed circuit's actual
    /// T-count (Figure 5/6 bookkeeping is exact).
    #[test]
    fn histogram_t_matches_decomposed_t(circuit in arb_circuit()) {
        // Histograms cover MCX-level gates; keep only those.
        let mcx_only: Circuit = circuit
            .to_gates()
            .into_iter()
            .filter(|g| matches!(g, Gate::Mcx { .. } | Gate::Mch { .. }))
            .collect();
        let predicted = mcx_only.histogram().t_complexity();
        let lowered = decompose::to_clifford_t(&mcx_only).expect("lowering succeeds");
        prop_assert_eq!(predicted, lowered.clifford_t_counts().t_count());
    }

    /// Cancellation passes never change semantics (checked via qopt in the
    /// workspace tests; here: the inverse identity survives a round-trip
    /// through the text format).
    #[test]
    fn parse_write_parse_is_stable(circuit in arb_circuit()) {
        let once = qcformat::parse(&qcformat::write(&circuit)).expect("parses");
        let twice = qcformat::parse(&qcformat::write(&once)).expect("parses");
        prop_assert_eq!(once, twice);
    }
}
