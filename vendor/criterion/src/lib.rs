//! Vendored minimal stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! exposing the API surface this workspace's bench targets use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no access to a crates.io registry, so the
//! dependency is provided as a small local crate. Measurement is a plain
//! warm-up + timed-sample loop reporting mean/min/max per benchmark; it
//! has no statistical machinery, plotting, or baseline storage, but it is
//! enough to compare orders of magnitude and to keep `cargo bench`
//! targets compiling and runnable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (modern criterion forwards
/// to the standard library hint just like this).
pub use std::hint::black_box;

/// Top-level benchmark driver, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.into(), 20, &mut f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmark a closure under a name or [`BenchmarkId`].
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that receives an input value by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (kept for API compatibility; reporting is eager).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name` plus a displayed parameter, rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Things usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render to the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, first warming up, then recording samples. Each
    /// sample runs the routine enough times for a stable reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20ms have elapsed to settle caches/JIT-less
        // frequency scaling, counting iterations to pick a batch size.
        let warmup_budget = Duration::from_millis(20);
        let start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while start.elapsed() < warmup_budget {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        // Aim for ~5ms per sample, at least one iteration.
        let batch = (5_000_000u128 / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            self.samples
                .push(elapsed / u32::try_from(batch).unwrap_or(u32::MAX).max(1));
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / u32::try_from(bencher.samples.len()).unwrap_or(1);
    println!("  {label}: mean {mean:?}  min {min:?}  max {max:?}  ({sample_size} samples)");
}

/// Define a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            });
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke2");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
