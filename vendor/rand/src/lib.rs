//! Vendored minimal stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, exposing exactly the API surface this workspace uses (the 0.9
//! method names: [`Rng::random_range`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`]).
//!
//! The build environment has no access to a crates.io registry, so the
//! dependency is provided as a small local crate. The generator is a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c)-seeded
//! xoshiro256** — not cryptographic, but high-quality, fast, and fully
//! deterministic per seed, which is all the workspace's randomized search
//! and property tests require.

/// A source of random `u64` values.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that can be sampled uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high)`. Panics if the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Sample uniformly from `[low, high]`. Panics if `low > high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                low.wrapping_add(uniform_u128(rng, span) as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full domain of a 128-bit type: just take raw bits.
                    return ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) as $ty;
                }
                low.wrapping_add(uniform_u128(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Uniform value in `[0, span)` via rejection sampling on 64-bit words
/// (span is known to fit because it came from a same-width subtraction).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span = span as u64;
        // Widening-multiply rejection method (Lemire).
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span) as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX - span + 1) % span;
        loop {
            let v = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
            if v <= zone {
                return v % span;
            }
        }
    }
}

/// Range types accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits, compared against p.
        let v = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        v < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the same seeding scheme the real `rand` uses for
    /// `seed_from_u64`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(0..6u32);
            assert!(v < 6);
            let w = rng.random_range(3..=4usize);
            assert!((3..=4).contains(&w));
            let s = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits}");
    }
}
