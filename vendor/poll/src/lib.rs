//! Vendored minimal readiness polling over [`std::os::fd`].
//!
//! The build environment has no access to a crates.io registry, so the
//! event-loop server in `spire-serve` cannot depend on `mio`, `polling`,
//! or even `libc`. This crate is the missing primitive in the same
//! spirit as the vendored `proptest`/`rand` stand-ins: the smallest
//! possible wrapper around the `ppoll(2)` system call, exposing exactly
//! the API the workspace uses — level-triggered readiness for a slice of
//! file descriptors with an optional timeout.
//!
//! On Linux (`x86_64` and `aarch64`) the syscall is issued directly with
//! inline assembly; this is the **only** `unsafe` code in the workspace,
//! quarantined here so every other crate keeps `#![forbid(unsafe_code)]`.
//! On any other target the crate degrades to a portable stub that sleeps
//! for a short slice of the timeout and reports every descriptor ready —
//! callers are level-triggered and treat `WouldBlock` as "not actually
//! ready", so the fallback costs CPU, not correctness.
//!
//! The API mirrors the `poll(2)` contract: callers build a slice of
//! [`PollFd`] interest records, [`poll`] blocks until at least one is
//! ready or the timeout expires, and each record's [`PollFd::revents`]
//! reports readiness. `EINTR` is retried internally (with the timeout
//! shortened by elapsed time), so callers never see spurious failures
//! from signals.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Readable data (or an incoming connection on a listener) is available.
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (output only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (output only).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open (output only).
pub const POLLNVAL: i16 = 0x020;

/// One descriptor's interest set and readiness result, layout-compatible
/// with the kernel's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// An interest record for `fd`. `events` is a mask of [`POLLIN`] /
    /// [`POLLOUT`]; the error conditions are always reported.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The registered descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// The readiness reported by the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// Whether the descriptor is readable (or has an error/hangup
    /// condition, which reads also observe).
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }

    /// Whether the descriptor is writable (or has an error condition,
    /// which writes also observe).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// Block until at least one registered descriptor is ready, the timeout
/// expires (`Ok(0)`), or an error occurs. `None` means wait forever.
///
/// Level-triggered, like `poll(2)`: a descriptor that is ready and not
/// drained reports ready again on the next call. Returns the number of
/// records with a nonzero [`PollFd::revents`].
///
/// # Errors
///
/// Propagates syscall failures (`EBADF`, `ENOMEM`, …). `EINTR` is
/// retried internally and never surfaces.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let started = std::time::Instant::now();
    loop {
        let remaining = timeout.map(|total| total.saturating_sub(started.elapsed()));
        match sys::ppoll(fds, remaining) {
            Err(e) if e.raw_os_error() == Some(EINTR) => {
                if matches!(timeout, Some(total) if started.elapsed() >= total) {
                    return Ok(0);
                }
                continue;
            }
            other => return other,
        }
    }
}

const EINTR: i32 = 4;

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::PollFd;
    use std::io;
    use std::time::Duration;

    /// Kernel `struct timespec` for `ppoll`'s relative timeout.
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    #[cfg(target_arch = "x86_64")]
    const SYS_PPOLL: usize = 271;
    #[cfg(target_arch = "aarch64")]
    const SYS_PPOLL: usize = 73;

    /// Issue the raw `ppoll` syscall.
    ///
    /// `sigmask` is null (the caller's signal mask is kept) and
    /// `sigsetsize` is 0, matching glibc's `poll` implementation.
    fn syscall_ppoll(fds: *mut PollFd, nfds: usize, timeout: *const Timespec) -> isize {
        let ret: isize;
        // SAFETY: `fds` points to `nfds` contiguous `#[repr(C)]` PollFd
        // records owned by the caller for the duration of the call;
        // `timeout` is null or a valid Timespec on the caller's stack;
        // the sigmask argument is null, which the kernel accepts as
        // "don't touch the signal mask". The asm clobbers are exactly
        // the registers the Linux syscall ABI clobbers.
        #[cfg(target_arch = "x86_64")]
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_PPOLL as isize => ret,
                in("rdi") fds,
                in("rsi") nfds,
                in("rdx") timeout,
                in("r10") 0usize,
                in("r8") 0usize,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") fds as isize => ret,
                in("x1") nfds,
                in("x2") timeout,
                in("x3") 0usize,
                in("x4") 0usize,
                in("x8") SYS_PPOLL,
                options(nostack),
            );
        }
        ret
    }

    pub fn ppoll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let ts;
        let ts_ptr = match timeout {
            None => std::ptr::null(),
            Some(t) => {
                ts = Timespec {
                    tv_sec: i64::try_from(t.as_secs()).unwrap_or(i64::MAX),
                    tv_nsec: i64::from(t.subsec_nanos()),
                };
                &ts as *const Timespec
            }
        };
        let ret = syscall_ppoll(fds.as_mut_ptr(), fds.len(), ts_ptr);
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-(ret as i32)))
        } else {
            Ok(ret as usize)
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::{PollFd, POLLIN, POLLOUT};
    use std::io;
    use std::time::Duration;

    /// Portable stub: sleep a short slice of the timeout, then report
    /// everything ready with its requested events. Callers are
    /// level-triggered and treat `WouldBlock` on the subsequent I/O as
    /// "not actually ready", so this trades CPU for correctness on
    /// targets without the raw syscall.
    pub fn ppoll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let slice = timeout
            .unwrap_or(Duration::from_millis(1))
            .min(Duration::from_millis(1));
        std::thread::sleep(slice);
        let mut ready = 0;
        for fd in fds.iter_mut() {
            fd.revents = fd.events & (POLLIN | POLLOUT);
            if fd.revents != 0 {
                ready += 1;
            }
        }
        Ok(ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::time::Instant;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let started = Instant::now();
        let n = poll(&mut fds, Some(Duration::from_millis(30))).unwrap();
        // The portable stub reports spuriously ready; the real syscall
        // reports nothing and waits out the timeout.
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert_eq!(n, 0);
            assert!(started.elapsed() >= Duration::from_millis(25));
            assert!(!fds[0].readable());
        }
    }

    #[test]
    fn readable_when_peer_writes() {
        let (a, mut b) = pair();
        b.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        let mut buf = [0u8; 1];
        let mut a = a;
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"x");
    }

    #[test]
    fn writable_socket_reports_pollout() {
        let (a, _b) = pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        let (a, b) = pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable(), "EOF/HUP must wake a reader");
    }

    #[test]
    fn multiple_fds_report_independently() {
        let (a, mut b) = pair();
        let (c, _d) = pair();
        b.write_all(b"y").unwrap();
        let mut fds = [
            PollFd::new(a.as_raw_fd(), POLLIN),
            PollFd::new(c.as_raw_fd(), POLLIN),
        ];
        poll(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(fds[0].readable());
        if cfg!(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        )) {
            assert!(!fds[1].readable(), "idle socket must not report ready");
        }
    }
}
