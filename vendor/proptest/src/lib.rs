//! Vendored minimal stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing
//! framework, exposing the API surface this workspace's tests use:
//! [`Strategy`](strategy::Strategy) with `prop_map`/`prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`prelude::any`], [`prop_oneof!`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to a crates.io registry, so the
//! dependency is provided as a small local crate. Generation is purely
//! random but deterministic: the RNG seed is a pure function of the test
//! name and case number, so failures reproduce without persistence files.
//!
//! # Shrinking
//!
//! Failing cases are shrunk toward a near-minimal counterexample before
//! being reported: integers are halved toward their range's lower bound
//! (plus a final single-step walk), vectors are truncated toward their
//! minimum length and shrunk element-wise, tuples component-wise, and
//! `prop_filter` re-applies its predicate to candidates. Remaining
//! deviations from real proptest's value-tree shrinking:
//!
//! * [`prop_map`](strategy::Strategy::prop_map) does not shrink — the stand-in keeps no value
//!   tree, so there is no pre-image to shrink and re-map (use
//!   `prop_filter` or shrink-friendly source strategies where minimal
//!   counterexamples matter).
//! * [`prop_oneof!`] / [`strategy::Union`] do not shrink across or within
//!   arms, because the chosen arm is not recorded.
//! * [`strategy::Just`] never shrinks (there is nothing smaller).
//! * The shrink loop is budgeted (1000 candidate evaluations) rather than
//!   exhaustive, and reports the best counterexample found in budget.
//! * While a property runs under the shrinking harness, the global panic
//!   hook is filtered on the current thread to keep candidate failures
//!   quiet; the minimal counterexample is reported in the final panic
//!   message instead.

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Smallest permitted length.
        pub fn lo(&self) -> usize {
            self.lo
        }

        /// Largest permitted length (inclusive).
        pub fn hi(&self) -> usize {
            self.hi
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy generating vectors whose elements come from
    /// `element` and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            // Truncations first: minimum length, halfway, one shorter.
            if value.len() > self.size.lo {
                out.push(value[..self.size.lo].to_vec());
                let half = (value.len() + self.size.lo) / 2;
                if half > self.size.lo && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                out.push(value[..value.len() - 1].to_vec());
            }
            // Then element-wise shrinks (a couple of candidates per slot).
            for (i, v) in value.iter().enumerate() {
                for candidate in self.element.shrink(v).into_iter().take(2) {
                    let mut copy = value.clone();
                    copy[i] = candidate;
                    out.push(copy);
                }
            }
            out
        }
    }
}

/// `proptest::prelude` — the customary glob import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    use crate::strategy::Arbitrary;

    /// Strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Strategies: the generation half of proptest.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};

    /// A generator of values of an associated type.
    ///
    /// Unlike real proptest there is no value tree: a strategy produces a
    /// value from the test RNG, and shrinking is a separate
    /// candidate-proposal step over already-produced values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Propose simpler candidates for a failing value, best first.
        ///
        /// The default proposes nothing (the strategy does not shrink);
        /// see the crate docs for which combinators do.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f`, retrying on rejection.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }

        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            (**self).shrink(value)
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values; \
                 the predicate is too restrictive for this stand-in \
                 (no global rejection budget)",
                self.whence
            );
        }

        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            self.inner
                .shrink(value)
                .into_iter()
                .filter(|v| (self.f)(v))
                .collect()
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    impl<T> Union<T> {
        /// Build a union from its alternatives. Panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.arms.len() - 1);
            self.arms[i].generate(rng)
        }
    }

    /// Integer types that shrink by halving toward an origin (the lower
    /// bound of the range that generated them).
    pub trait IntShrink: Copy + PartialEq {
        /// Candidates between `origin` and `value`, best (smallest) first:
        /// the origin itself, the halfway point, and one step back.
        fn shrink_toward(origin: Self, value: Self) -> Vec<Self>;
    }

    macro_rules! impl_int_shrink {
        ($(($ty:ty, $unsigned:ty)),*) => {$(
            impl IntShrink for $ty {
                fn shrink_toward(origin: Self, value: Self) -> Vec<Self> {
                    if value == origin {
                        return Vec::new();
                    }
                    // Distance in the unsigned counterpart: correct for
                    // signed types even across the full domain.
                    let diff = (value as $unsigned).wrapping_sub(origin as $unsigned);
                    let mut out = vec![origin];
                    let mid = origin.wrapping_add((diff / 2) as $ty);
                    if mid != origin && mid != value {
                        out.push(mid);
                    }
                    let prev = origin.wrapping_add((diff - 1) as $ty);
                    if prev != origin && prev != mid {
                        out.push(prev);
                    }
                    out
                }
            }
        )*};
    }

    impl_int_shrink!(
        (u8, u8),
        (u16, u16),
        (u32, u32),
        (u64, u64),
        (u128, u128),
        (usize, usize),
        (i8, u8),
        (i16, u16),
        (i32, u32),
        (i64, u64),
        (i128, u128),
        (isize, usize)
    );

    /// Integer ranges are strategies.
    impl<T: SampleUniform + IntShrink> Strategy for core::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.as_rng().random_range(self.clone())
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_toward(self.start, *value)
        }
    }

    impl<T: SampleUniform + IntShrink> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.as_rng().random_range(self.clone())
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_toward(*self.start(), *value)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($name:ident, $idx:tt)),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: Clone,)+
            {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others held fixed.
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$idx.shrink(&value.$idx) {
                            let mut copy = value.clone();
                            copy.$idx = candidate;
                            out.push(copy);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_tuple_strategy!((A, 0));
    impl_tuple_strategy!((A, 0), (B, 1));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4));
    impl_tuple_strategy!((A, 0), (B, 1), (C, 2), (D, 3), (E, 4), (F, 5));

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`crate::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;

        /// Strategy over the whole domain of `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                type Strategy = core::ops::RangeInclusive<$ty>;

                fn arbitrary() -> Self::Strategy {
                    <$ty>::MIN..=<$ty>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.as_rng().random_bool(0.5)
        }

        fn shrink(&self, value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies. Deterministic per `(test, case)` so
    /// failures reproduce without persistence files.
    #[derive(Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a, not std's DefaultHasher: the seed must be stable
            // across Rust releases for failures to stay reproducible.
            const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
            let mut hash = FNV_OFFSET;
            for byte in test_name.bytes().chain(case.to_le_bytes()) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// Access the underlying `rand` generator.
        pub fn as_rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            if lo == hi {
                return lo;
            }
            self.inner.random_range(lo..=hi)
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    use std::cell::Cell;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Once;

    use crate::strategy::Strategy;

    thread_local! {
        /// While true, panics on this thread are candidate evaluations of
        /// the shrinking loop and their output is suppressed.
        static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
    }

    /// Install (once, process-wide) a panic hook that stays silent while
    /// the current thread is evaluating shrink candidates and defers to
    /// the previous hook otherwise. Per-thread filtering keeps unrelated
    /// concurrently-failing tests' diagnostics intact.
    fn install_filter_hook() {
        static INIT: Once = Once::new();
        INIT.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                    previous(info);
                }
            }));
        });
    }

    fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "(non-string panic payload)".to_string()
        }
    }

    /// Maximum number of shrink-candidate evaluations per failing case.
    const SHRINK_BUDGET: usize = 1_000;

    /// Drive one property: generate `config.cases` values, and on the
    /// first failure shrink it to a near-minimal counterexample before
    /// panicking. This is the runtime behind the [`crate::proptest!`]
    /// macro.
    ///
    /// # Panics
    ///
    /// Panics (after shrinking) if `test` panics for any generated value.
    pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: Fn(S::Value),
    {
        install_filter_hook();
        let run_case = |value: S::Value| -> Result<(), String> {
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
            let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
            SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
            outcome.map_err(|payload| panic_message(&*payload))
        };
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(name, case);
            let value = strategy.generate(&mut rng);
            let Err(first_message) = run_case(value.clone()) else {
                continue;
            };
            // Greedy shrink: take the first simpler candidate that still
            // fails, restart from it, stop when none fails (local minimum)
            // or the budget runs out.
            let mut minimal = value;
            let mut message = first_message;
            let mut steps = 0usize;
            'shrinking: loop {
                for candidate in strategy.shrink(&minimal) {
                    if steps >= SHRINK_BUDGET {
                        break 'shrinking;
                    }
                    steps += 1;
                    if let Err(candidate_message) = run_case(candidate.clone()) {
                        minimal = candidate;
                        message = candidate_message;
                        continue 'shrinking;
                    }
                }
                break;
            }
            panic!(
                "proptest property {name} failed (case {case}); \
                 minimal counterexample after {steps} shrink evaluation(s):\n\
                 value: {minimal:?}\npanic: {message}"
            );
        }
    }
}

/// Uniform choice between strategies, all erased to a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
///
/// All bindings are bundled into one tuple strategy so the shrinking
/// runner can re-execute the body on candidate values; the generation
/// order (and therefore the RNG stream per case) is identical to drawing
/// each binding in sequence.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_property(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &strategy,
                    |($($pat,)+)| $body,
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot(u32),
        Pair(u32, u32),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0..10u32).prop_map(Shape::Dot),
            (0..10u32, 0..10u32)
                .prop_filter("distinct", |(a, b)| a != b)
                .prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..6u32, y in 0u64..32) {
            prop_assert!(x < 6);
            prop_assert!(y < 32);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 3..=4)) {
            prop_assert!(v.len() == 3 || v.len() == 4, "len {}", v.len());
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(any::<u8>(), 64)) {
            prop_assert_eq!(v.len(), 64);
        }

        #[test]
        fn filters_apply(shape in arb_shape()) {
            if let Shape::Pair(a, b) = shape {
                prop_assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = crate::collection::vec(any::<u16>(), 8);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    /// Run a property expected to fail and return the shrunk report.
    fn failing_report<S>(strategy: S, test: impl Fn(S::Value)) -> String
    where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::test_runner::run_property(
                "shrink_demo",
                &ProptestConfig::with_cases(32),
                &strategy,
                test,
            );
        }));
        let payload = outcome.expect_err("property should fail");
        payload
            .downcast_ref::<String>()
            .expect("string panic payload")
            .clone()
    }

    #[test]
    fn integers_shrink_to_the_boundary() {
        // Failing set is x >= 37; the minimal counterexample is exactly 37.
        let report = failing_report((0u32..1000,), |(x,)| {
            assert!(x < 37, "x too big: {x}");
        });
        assert!(report.contains("value: (37,)"), "report: {report}");
    }

    #[test]
    fn vectors_shrink_to_minimal_length_and_zero_elements() {
        // Failing set is len >= 3; minimal is three zero bytes.
        let report = failing_report((crate::collection::vec(any::<u8>(), 0..20),), |(v,)| {
            assert!(v.len() < 3, "vector of length {}", v.len());
        });
        assert!(report.contains("value: ([0, 0, 0],)"), "report: {report}");
    }

    #[test]
    fn tuples_shrink_component_wise() {
        let report = failing_report((0u32..100, 0u32..100), |(a, b)| {
            assert!(a < 10 || b < 20, "a={a} b={b}");
        });
        assert!(report.contains("value: (10, 20)"), "report: {report}");
    }

    #[test]
    fn shrink_candidates_respect_filters() {
        let strategy = (0u32..1000).prop_filter("even", |x| x % 2 == 0);
        for candidate in strategy.shrink(&800) {
            assert_eq!(candidate % 2, 0, "shrink must preserve the filter");
        }
    }
}
