//! Vendored minimal stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing
//! framework, exposing the API surface this workspace's tests use:
//! [`Strategy`] with `prop_map`/`prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`prelude::any`], [`prop_oneof!`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` macros.
//!
//! The build environment has no access to a crates.io registry, so the
//! dependency is provided as a small local crate. Differences from real
//! proptest: generation is purely random (deterministic per test name and
//! case index) with **no shrinking**, and `prop_assert*` failures panic
//! immediately instead of entering the shrinking loop. Failures are still
//! reproducible because the RNG seed is a pure function of the test name
//! and case number.

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        /// Smallest permitted length.
        pub fn lo(&self) -> usize {
            self.lo
        }

        /// Largest permitted length (inclusive).
        pub fn hi(&self) -> usize {
            self.hi
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Create a strategy generating vectors whose elements come from
    /// `element` and whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::prelude` — the customary glob import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    use crate::strategy::Arbitrary;

    /// Strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Strategies: the generation half of proptest.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, SampleUniform};

    /// A generator of values of an associated type.
    ///
    /// Unlike real proptest there is no value tree and no shrinking: a
    /// strategy simply produces a value from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }

        /// Keep only values satisfying `f`, retrying on rejection.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let value = self.inner.generate(rng);
                if (self.f)(&value) {
                    return value;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1000 consecutive values; \
                 the predicate is too restrictive for this stand-in \
                 (no global rejection budget)",
                self.whence
            );
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("arms", &self.arms.len())
                .finish()
        }
    }

    impl<T> Union<T> {
        /// Build a union from its alternatives. Panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.arms.len() - 1);
            self.arms[i].generate(rng)
        }
    }

    /// Integer ranges are strategies.
    impl<T: SampleUniform> Strategy for core::ops::Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.as_rng().random_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            rng.as_rng().random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy [`crate::prelude::any`] returns.
        type Strategy: Strategy<Value = Self>;

        /// Strategy over the whole domain of `Self`.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                type Strategy = core::ops::RangeInclusive<$ty>;

                fn arbitrary() -> Self::Strategy {
                    <$ty>::MIN..=<$ty>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Full-domain strategy for `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.as_rng().random_bool(0.5)
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> Self::Strategy {
            AnyBool
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The RNG handed to strategies. Deterministic per `(test, case)` so
    /// failures reproduce without persistence files.
    #[derive(Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// RNG for one case of one named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a, not std's DefaultHasher: the seed must be stable
            // across Rust releases for failures to stay reproducible.
            const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
            let mut hash = FNV_OFFSET;
            for byte in test_name.bytes().chain(case.to_le_bytes()) {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(FNV_PRIME);
            }
            TestRng {
                inner: StdRng::seed_from_u64(hash),
            }
        }

        /// Access the underlying `rand` generator.
        pub fn as_rng(&mut self) -> &mut StdRng {
            &mut self.inner
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            if lo == hi {
                return lo;
            }
            self.inner.random_range(lo..=hi)
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Uniform choice between strategies, all erased to a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion: panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Define property tests. Each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Shape {
        Dot(u32),
        Pair(u32, u32),
    }

    fn arb_shape() -> impl Strategy<Value = Shape> {
        prop_oneof![
            (0..10u32).prop_map(Shape::Dot),
            (0..10u32, 0..10u32)
                .prop_filter("distinct", |(a, b)| a != b)
                .prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0..6u32, y in 0u64..32) {
            prop_assert!(x < 6);
            prop_assert!(y < 32);
        }

        #[test]
        fn vec_lengths_respect_size(v in crate::collection::vec(any::<u8>(), 3..=4)) {
            prop_assert!(v.len() == 3 || v.len() == 4, "len {}", v.len());
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(any::<u8>(), 64)) {
            prop_assert_eq!(v.len(), 64);
        }

        #[test]
        fn filters_apply(shape in arb_shape()) {
            if let Shape::Pair(a, b) = shape {
                prop_assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        let strat = crate::collection::vec(any::<u16>(), 8);
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
